(** Arithmetic circuits over {!Field.Gf}.

    The paper models the mediator as "an arithmetic circuit with at most c
    gates" (Section 4). A circuit here maps n player inputs plus a vector
    of random field elements to one output wire per player (the action
    recommendation). The same circuit is evaluated either in the clear (by
    the trusted mediator) or gate-by-gate on secret shares (by the
    asynchronous MPC substrate of Theorems 5.4/5.5). *)

type gate =
  | Input of int  (** [Input i]: the input of player i (0-based). *)
  | Random of int  (** [Random j]: the j-th shared random element. *)
  | Const of Field.Gf.t
  | Add of int * int  (** indices of earlier gates *)
  | Sub of int * int
  | Mul of int * int
  | Scale of Field.Gf.t * int

type t = private {
  n_inputs : int;
  n_random : int;
  random_moduli : int array;
      (** Per-slot randomness distribution: 0 means a uniform field
          element; m > 0 means uniform in [0, m). In the MPC substrate a
          mod-m slot is realised as a sum of private per-player
          contributions drawn mod m (so the wire carries a value in
          [0, n·(m-1)]); circuits built with {!Builder.table_lookup} fold
          the final reduction into an interpolated polynomial. *)
  gates : gate array;
  outputs : int array;  (** gate index providing each output wire *)
}

val create :
  ?random_moduli:int array ->
  n_inputs:int ->
  n_random:int ->
  gates:gate array ->
  outputs:int array ->
  unit ->
  t
(** Validates that every gate only references strictly earlier gates, input
    indices are in range, and outputs reference existing gates.
    @raise Invalid_argument otherwise. *)

val sample_randomness : t -> Random.State.t -> Field.Gf.t array
(** Draw the random vector according to [random_moduli] — what the trusted
    mediator does when evaluating the circuit in the clear. *)

val size : t -> int
(** Number of gates (the paper's [c]). *)

val depth : t -> int
(** Longest path through Add/Sub/Mul/Scale gates. *)

val mul_count : t -> int
(** Number of multiplication gates (dominates MPC cost). *)

val eval : t -> inputs:Field.Gf.t array -> random:Field.Gf.t array -> Field.Gf.t array
(** Evaluate in the clear. @raise Invalid_argument on arity mismatch. *)

val eval_with : t -> (gate -> 'a array -> 'a) -> 'a array
(** Generic evaluator: folds a user interpretation over the gates in order
    (the callback receives the gate and the array of already-computed gate
    values) and returns the output wires. Used by the MPC engine to run the
    same circuit on shares. *)

val identity_selector : n_inputs:int -> t
(** Circuit with one output per input, wired straight through — the
    "mediator forwards everyone's input" circuit. *)

val majority : n_inputs:int -> t
(** Circuit computing, for binary inputs, a value that is 1 iff the sum of
    inputs exceeds n/2, encoded arithmetically via a table-free threshold
    polynomial over {0..n}; each player's output wire is the majority bit.
    Used by the Byzantine-agreement example. *)

val sum : n_inputs:int -> t
(** Circuit outputting the field sum of all inputs to every player. *)

val coin_plus_input : n_inputs:int -> t
(** Circuit giving each player (input_i + r) where r is one shared random
    element: the "correlated random recommendation" pattern. *)

val random_circuit :
  Random.State.t -> n_inputs:int -> n_random:int -> n_gates:int -> n_outputs:int -> t
(** Random well-formed circuit (for scaling benchmarks over c). *)

val pp : Format.formatter -> t -> unit

(** Imperative construction helper used by the mediator specs. *)
module Builder : sig
  type circuit := t
  type t

  val create : n_inputs:int -> t

  val input : t -> int -> int
  (** Gate id carrying input [i] (emitted once, cached). *)

  val random : t -> ?modulus:int -> unit -> int
  (** Allocate a fresh randomness slot (uniform field element, or uniform
      mod [modulus]) and return the gate id carrying it. When [modulus] is
      given, the MPC realisation sums per-player mod-m contributions, so
      downstream consumers must treat the wire as a value in
      [0, n·(m-1)] and reduce via {!table_lookup} with an appropriate
      [domain]. *)

  val const : t -> Field.Gf.t -> int
  val add : t -> int -> int -> int
  val sub : t -> int -> int -> int
  val mul : t -> int -> int -> int
  val scale : t -> Field.Gf.t -> int -> int

  val sum : t -> int list -> int
  (** Balanced chain of additions; the empty list yields a zero constant. *)

  val poly_eval : t -> Field.Poly.t -> int -> int
  (** Horner evaluation of a fixed polynomial at a wire. *)

  val table_lookup : t -> wire:int -> domain:int -> (int -> Field.Gf.t) -> int
  (** Gate computing f(w) for w in {0..domain-1}, where f is given by the
      table: interpolates the degree-(domain-1) polynomial through the
      table and evaluates it. The wire value MUST lie in the domain. *)

  val finish : t -> outputs:int array -> circuit
end
