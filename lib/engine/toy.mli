(** The toy benchmark game: the engine's reference workload.

    An [n]-player one-round exchange: every player broadcasts a
    seed-derived vote at start, and moves (the sum of all votes mod 7)
    once it has heard from everyone, then halts. Every session
    terminates [All_halted] after exactly [n*(n-1)] deliveries plus the
    [n] start signals, so completed-session throughput is directly
    comparable across runs, while the moves (and hence the profile
    distribution) still vary with the seed.

    Configs are built with [~record:false] (no trace allocation — the
    engine's steady-state mode) and the history-free
    [Scheduler.random_seeded seed], keeping every session a pure
    function of its seed. *)

val config : ?n:int -> seed:int -> unit -> (int, int) Sim.Runner.config
(** Default [n = 4]. [Engine.run ~make:(fun ~seed -> Toy.config ~seed ())]. *)

val profile : int Sim.Types.outcome -> string
(** Termination + moves, via {!Transport.Differential.profile}. *)
