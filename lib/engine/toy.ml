module Types = Sim.Types

(* seed/pid mixer for the votes: cheap, deterministic, spreads low
   seeds (the engine numbers sessions densely from 0) *)
let vote ~seed ~me =
  let h = (seed * 0x9E3779B9) lxor (me * 0x85EBCA6B) in
  let h = h lxor (h lsr 13) in
  (h land max_int) mod 5

let player ~n ~me ~vote:v =
  let got = ref 0 in
  let sum = ref v in
  Types.
    {
      start =
        (fun () ->
          let effs = ref [] in
          for p = n - 1 downto 0 do
            if p <> me then effs := Send (p, v) :: !effs
          done;
          if n = 1 then [ Move (v mod 7); Halt ] else !effs);
      receive =
        (fun ~src:_ w ->
          got := !got + 1;
          sum := !sum + w;
          if !got = n - 1 then [ Move (!sum mod 7); Halt ] else []);
      will = (fun () -> None);
    }

let config ?(n = 4) ~seed () =
  if n < 1 then invalid_arg (Printf.sprintf "Toy.config: n must be > 0 (got %d)" n);
  let procs = Array.init n (fun me -> player ~n ~me ~vote:(vote ~seed ~me)) in
  Sim.Runner.config ~record:false ~scheduler:(Sim.Scheduler.random_seeded seed) procs

let profile o = Transport.Differential.profile ~show:string_of_int o
