(** The many-session throughput engine (DESIGN.md §15).

    Production load for the paper's protocols is not one big run but
    huge numbers of small sessions — each game replaces its own
    mediator. This engine runs [sessions] independent sessions, seeds
    [0 .. sessions-1], sharded over a {!Parallel.Pool}:

    - sessions are split into [shards] contiguous seed ranges; shards
      are the work-stealing unit ([Pool.map_seeded ~chunk:1] over shard
      indices), so an uneven shard does not idle the other domains;
    - each shard folds its completed sessions into bounded-memory
      accumulators ({!Obs.Agg} + {!Obs.Hist} — O(1) in session count,
      never a per-session list) the moment they finish;
    - shard accumulators are merged in shard order on the submitting
      domain.

    {b Steady-state allocation.} Sessions are built with
    [Runner.config ~record:false] by workload constructors meant for
    this engine (see {!Toy}): delivery then allocates no trace/pattern
    nodes, and the per-completion fold allocates nothing proportional
    to the session's message count. The in-flight window of the live
    backend keeps its session state in struct-of-arrays form (parallel
    [handles]/[start-times] arrays indexed by slot).

    {b Determinism contract.} Everything in {!det_repr} is a pure
    function of (sessions, the workload, the per-session seeds): every
    accumulator is insertion-order independent (sums, histograms,
    key-sorted count tables), so the result is byte-identical at any
    [shards], any pool size [-j], any [inflight] window, and across
    the Sim/Live backends. Wall-clock, throughput rates and latency
    percentiles are environmental and live outside {!det_repr}. *)

module Toy = Toy
(** The reference toy workload (re-exported: the library root shadows
    sibling modules). *)

type stats = {
  sessions : int;
  completed : int;  (** sessions that terminated [All_halted] *)
  profiles : (string * int) list;
      (** outcome-profile counts (termination + moves), key-sorted *)
  agg : Obs.Agg.t;  (** per-session metrics aggregate (deterministic) *)
  latency : Obs.Hist.t;
      (** per-session wall latency in µs — environmental, never in
          {!det_repr} *)
  wall_s : float;  (** submission-to-merge wall time — environmental *)
  alloc_words : float;
      (** GC words (minor + major − promoted) allocated across all
          shards while their sessions executed — the allocation budget
          the perf gate tracks as [words_per_session]. Environmental,
          never in {!det_repr} (like wall-clock: it depends on the
          runtime, not the workload's deterministic behaviour). *)
}

exception Interrupted
(** {!run} stopped at a checkpoint boundary because [kill_switch]
    returned true. Every shard's progress is already persisted in the
    journal directory; re-run with [~resume:true] to continue. *)

val run :
  ?backend:Transport.Backend.t ->
  ?shards:int ->
  ?inflight:int ->
  ?recycle:bool ->
  ?pool:Parallel.Pool.t ->
  ?journal:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?kill_switch:(unit -> bool) ->
  ?on_warning:(string -> unit) ->
  ?meta:Obs.Json.t ->
  sessions:int ->
  make:(seed:int -> ('m, 'a) Sim.Runner.config) ->
  profile:('a Sim.Types.outcome -> string) ->
  unit ->
  stats
(** Run [sessions] sessions with seeds [0 .. sessions-1]. [make] must
    be a pure function of the seed (the usual trial contract).
    Defaults: [backend = Sim], [shards = 1], [inflight = 16] (live
    in-flight window per shard; ignored by the Sim backend, which runs
    each session to completion), [recycle = true],
    [pool = Parallel.Pool.sequential].

    {b Session recycling} (DESIGN.md §17). With [recycle] (the default)
    each shard reuses driver state across its sessions via
    {!Sim.Runner.Slot} — one slot per shard on the Sim backend, one per
    in-flight window entry on Live — so per-session setup stops
    allocating after each slot's first session. Observationally
    invisible: {!det_repr} is byte-identical with recycling on or off
    (the qcheck differential suite and [ctmed serve --smoke] both
    enforce this); [~recycle:false] is the escape hatch that forces
    fresh per-session state.

    {b Durability} (DESIGN.md section 16). With [~journal:dir] the run
    is crash-restartable: each shard executes in chunks of
    [checkpoint_every] seeds (default 1024) and after every chunk
    atomically replaces its [shard-NNNN.json] file — the complete
    accumulator state plus the next seed — while [manifest.json] pins
    the run's deterministic parameters. The live backend drains its
    in-flight window at each chunk boundary, so a checkpoint always
    describes a seed-prefix of the shard. A run restarted with
    [~resume:true] (same sessions/shards/backend) reloads every shard
    file and continues from the persisted seeds; because within-shard
    fold order is seed order either way, the resumed {!det_repr} is
    byte-identical to an uninterrupted run's — this holds across
    SIGKILL since the worst case merely loses the tail since the last
    checkpoint and recomputes it. Resuming a finished journal re-runs
    nothing and returns the final stats. A missing or damaged shard
    file is reported through [on_warning] and that shard is recomputed
    from scratch (slower, still exact); a missing or damaged manifest
    is unrecoverable and raises [Failure].

    [kill_switch] is polled at every checkpoint boundary (wire it to a
    signal flag for graceful shutdown); when it returns true the run
    stops after persisting and raises {!Interrupted}. [meta] is stored
    verbatim in the manifest under ["workload"] so a CLI can rebuild
    the same [make] on resume — see {!load_manifest}.

    @raise Invalid_argument if [sessions < 0], [shards < 1],
    [inflight < 1], [checkpoint_every < 1], [resume] without [journal],
    or resume parameters contradicting the manifest.
    @raise Failure when resuming and the manifest is missing/corrupt. *)

val load_manifest : dir:string -> Obs.Json.t
(** The journal's manifest document (run parameters + the caller's
    ["workload"] metadata).
    @raise Failure when missing or unparseable ("unrecoverable"). *)

val det_repr : stats -> string
(** The deterministic digest the differential tests byte-compare:
    session/completion counts, profile distribution, aggregate summary
    and merged deterministic metric counters. *)

val sessions_per_min : stats -> float
val messages_per_sec : stats -> float
(** Delivered messages per second. Environmental. *)

val latency_us : stats -> int * int
(** (p50, p99) session latency in µs. Environmental. *)

val words_per_session : stats -> float
(** Allocated GC words per session ([alloc_words / sessions]) — the
    allocation budget surfaced in the bench throughput section and
    gated lower-is-better by [--baseline]. Environmental. *)

val throughput_line : stats -> string
(** One-line environmental summary (rates + latency percentiles) for
    CLI output — kept apart from {!det_repr} by construction. *)
