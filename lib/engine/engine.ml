module Toy = Toy

module Runner = Sim.Runner
module Types = Sim.Types

(* Profile counts are keyed by strings on the per-session hot path; a
   monomorphic hashtable avoids the structural hash/equality fallbacks
   (see the poly-compare lint guard in scripts/). *)
module Stbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = String.hash
end)

type stats = {
  sessions : int;
  completed : int;
  profiles : (string * int) list;
  agg : Obs.Agg.t;
  latency : Obs.Hist.t;
  wall_s : float;
  alloc_words : float;
}

(* Per-shard accumulator: every completed session folds in immediately,
   so shard memory is O(1) in the number of sessions. All fields are
   insertion-order independent once canonicalised (the profile table is
   key-sorted at merge), which is what makes the merged result
   invariant under shard count, pool size and in-flight interleaving.
   [alloc_words] is environmental (GC words allocated while the shard
   executed on its domain) and excluded from det_repr like wall-clock. *)
type acc = {
  agg : Obs.Agg.t;
  lat : Obs.Hist.t;
  profiles : int Stbl.t;
  mutable completed : int;
  mutable alloc_words : float;
}

let acc_create () =
  {
    agg = Obs.Agg.create ();
    lat = Obs.Hist.create ();
    profiles = Stbl.create 16;
    completed = 0;
    alloc_words = 0.0;
  }

let note acc ~profile ~t0 (o : 'a Types.outcome) =
  Obs.Agg.add_run acc.agg o.Types.metrics;
  Obs.Hist.add acc.lat (int_of_float ((Runner.now () -. t0) *. 1e6));
  (match o.Types.termination with
  | Types.All_halted -> acc.completed <- acc.completed + 1
  | _ -> ());
  let p = profile o in
  let n = match Stbl.find_opt acc.profiles p with Some n -> n | None -> 0 in
  Stbl.replace acc.profiles p (n + 1)

(* Sim backend: each session is a synchronous Runner.run. With
   [recycle], one Runner.Slot per shard carries the driver's grown
   arrays from session to session, so setup stops allocating after the
   first seed (the recycled det_repr is byte-identical — see the
   differential suite in test_engine). *)
let sim_shard ~recycle ~make ~profile ~lo ~hi acc =
  let slot = if recycle then Some (Runner.Slot.create ()) else None in
  for seed = lo to hi - 1 do
    let t0 = Runner.now () in
    note acc ~profile ~t0 (Runner.run ?slot (make ~seed))
  done

(* Live backend: an in-flight window of fiber sessions multiplexed on
   this shard's domain, stepped round-robin. Session state is
   struct-of-arrays: parallel slot arrays for the live handle and the
   start timestamp. Sessions share no state, so the interleaving cannot
   change any session's outcome — only latency. With [recycle] each
   window entry owns one Runner.Slot, refilled only when its previous
   session has completed. *)
let live_shard ~recycle ~inflight ~make ~profile ~lo ~hi acc =
  let window = min inflight (max 0 (hi - lo)) in
  if window > 0 then begin
    let handles = Array.make window None in
    let t0s = Array.make window 0.0 in
    let slots =
      if recycle then Some (Array.init window (fun _ -> Runner.Slot.create ()))
      else None
    in
    let next = ref lo in
    let active = ref 0 in
    let fill slot =
      if !next < hi then begin
        t0s.(slot) <- Runner.now ();
        let rslot = match slots with Some a -> Some a.(slot) | None -> None in
        handles.(slot) <- Some (Transport.Live.start ?slot:rslot (make ~seed:!next));
        incr next;
        incr active
      end
    in
    for s = 0 to window - 1 do
      fill s
    done;
    while !active > 0 do
      for s = 0 to window - 1 do
        match handles.(s) with
        | None -> ()
        | Some l -> (
            match Transport.Live.step l with
            | `Running -> ()
            | `Done o ->
                handles.(s) <- None;
                decr active;
                note acc ~profile ~t0:t0s.(s) o;
                fill s)
      done
    done
  end

(* ------------------------------------------------------------------ *)
(* Crash-restart checkpointing (DESIGN.md section 16). A journal
   directory holds one atomically-replaced JSON file per shard — the
   shard's complete accumulator state plus the next seed to run — and a
   manifest naming the run's deterministic parameters. Restart = reload
   every shard file and continue each shard from its [next] seed:
   within-shard fold order is seed order either way, so the resumed
   det_repr is byte-identical to an uninterrupted run's. *)

exception Interrupted

let manifest_path dir = Filename.concat dir "manifest.json"
let shard_path dir shard = Filename.concat dir (Printf.sprintf "shard-%04d.json" shard)
let backend_name = function Transport.Backend.Sim -> "sim" | Transport.Backend.Live -> "live"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let profiles_sorted tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Stbl.fold (fun k n l -> (k, n) :: l) tbl [])

let save_shard path ~lo ~hi ~next acc =
  Store.write_json_atomic ~path
    (Obs.Json.Obj
       [
         ("lo", Obs.Json.Int lo);
         ("hi", Obs.Json.Int hi);
         ("next", Obs.Json.Int next);
         ("completed", Obs.Json.Int acc.completed);
         ( "profiles",
           Obs.Json.Obj
             (List.map (fun (k, n) -> (k, Obs.Json.Int n)) (profiles_sorted acc.profiles)) );
         ("agg", Obs.Agg.to_json acc.agg);
         ("latency", Obs.Hist.to_json acc.lat);
       ])

(* [Error reason] means "recompute this shard from scratch" — always
   correct, never half-restored. *)
let load_shard path ~lo ~hi =
  match Obs.Json.of_file path with
  | exception Obs.Json.Parse_error m -> Error m
  | exception Sys_error m -> Error m
  | j -> (
      let int k = Option.bind (Obs.Json.member k j) Obs.Json.to_int_opt in
      match (int "lo", int "hi", int "next") with
      | Some l, Some h, Some next when l = lo && h = hi && next >= lo && next <= hi -> (
          let agg = Option.bind (Obs.Json.member "agg" j) Obs.Agg.of_json in
          let lat = Option.bind (Obs.Json.member "latency" j) Obs.Hist.of_json in
          let profs = Option.bind (Obs.Json.member "profiles" j) Obs.Json.to_obj_opt in
          match (agg, lat, int "completed", profs) with
          | Some agg, Some lat, Some completed, Some profs -> (
              let profiles = Stbl.create 16 in
              try
                List.iter
                  (fun (k, v) ->
                    match Obs.Json.to_int_opt v with
                    | Some n -> Stbl.replace profiles k n
                    | None -> raise Exit)
                  profs;
                Ok (next, { agg; lat; profiles; completed; alloc_words = 0.0 })
              with Exit -> Error "bad profile table")
          | _ -> Error "missing or mistyped checkpoint fields")
      | Some _, Some _, Some _ -> Error "checkpoint range does not match this run"
      | _ -> Error "missing lo/hi/next fields")

let load_manifest ~dir =
  let path = manifest_path dir in
  match Obs.Json.of_file path with
  | j -> j
  | exception Obs.Json.Parse_error m -> failwith ("unrecoverable journal: " ^ m)
  | exception Sys_error m -> failwith ("unrecoverable journal: " ^ m)

let run ?(backend = Transport.Backend.Sim) ?(shards = 1) ?(inflight = 16)
    ?(recycle = true) ?(pool = Parallel.Pool.sequential) ?journal
    ?(checkpoint_every = 1024) ?(resume = false) ?(kill_switch = fun () -> false)
    ?(on_warning = fun _ -> ()) ?(meta = Obs.Json.Null) ~sessions ~make ~profile () =
  if sessions < 0 then
    invalid_arg (Printf.sprintf "Engine.run: sessions must be >= 0 (got %d)" sessions);
  if shards < 1 then
    invalid_arg (Printf.sprintf "Engine.run: shards must be > 0 (got %d)" shards);
  if inflight < 1 then
    invalid_arg (Printf.sprintf "Engine.run: inflight must be > 0 (got %d)" inflight);
  if checkpoint_every < 1 then
    invalid_arg
      (Printf.sprintf "Engine.run: checkpoint_every must be > 0 (got %d)" checkpoint_every);
  if resume && journal = None then
    invalid_arg "Engine.run: ~resume requires a ~journal directory";
  (match journal with
  | None -> ()
  | Some dir ->
      if resume then begin
        (* The deterministic parameters must match the original run, or
           the shard ranges (and hence the digest) would change. *)
        let m = load_manifest ~dir in
        let int k = Option.bind (Obs.Json.member k m) Obs.Json.to_int_opt in
        let str k = Option.bind (Obs.Json.member k m) Obs.Json.to_string_opt in
        match (int "sessions", int "shards", str "backend") with
        | Some s, Some sh, Some b ->
            if s <> sessions || sh <> shards || b <> backend_name backend then
              invalid_arg
                (Printf.sprintf
                   "Engine.run: resume parameters (sessions=%d shards=%d backend=%s) do not \
                    match the journal manifest (sessions=%d shards=%d backend=%s)"
                   sessions shards (backend_name backend) s sh b)
        | _ -> failwith "unrecoverable journal: manifest is missing run parameters"
      end
      else begin
        mkdir_p dir;
        Store.write_json_atomic ~path:(manifest_path dir)
          (Obs.Json.Obj
             [
               ("version", Obs.Json.Int 1);
               ("sessions", Obs.Json.Int sessions);
               ("shards", Obs.Json.Int shards);
               ("backend", Obs.Json.String (backend_name backend));
               ("inflight", Obs.Json.Int inflight);
               ("checkpoint_every", Obs.Json.Int checkpoint_every);
               ("workload", meta);
             ])
      end);
  let t0 = Runner.now () in
  let per = if shards = 0 then 0 else (sessions + shards - 1) / shards in
  let run_range ~lo ~hi acc =
    match backend with
    | Transport.Backend.Sim -> sim_shard ~recycle ~make ~profile ~lo ~hi acc
    | Transport.Backend.Live -> live_shard ~recycle ~inflight ~make ~profile ~lo ~hi acc
  in
  (* Allocation budget: GC word deltas around one shard's whole
     execution. A shard task runs wholly on one domain and quick_stat's
     allocation counters are domain-local in OCaml 5, so the delta is
     exactly what this shard's sessions (plus its fold) allocated.
     total = minor + major - promoted (promoted words appear in both). *)
  let alloc_delta f acc =
    let g0 = Gc.quick_stat () in
    let r = f () in
    let g1 = Gc.quick_stat () in
    acc.alloc_words <-
      acc.alloc_words
      +. (g1.Gc.minor_words -. g0.Gc.minor_words)
      +. (g1.Gc.major_words -. g0.Gc.major_words)
      -. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
    r
  in
  (* chunk:1 — shards are the stealing unit, so one slow shard cannot
     serialise the tail behind a fixed pre-assignment *)
  let shard_accs =
    Parallel.Pool.map_seeded ~chunk:1 ~pool ~seeds:(0, shards) (fun shard ->
        let lo = min sessions (shard * per) and hi = min sessions ((shard + 1) * per) in
        match journal with
        | None ->
            let acc = acc_create () in
            alloc_delta (fun () -> run_range ~lo ~hi acc) acc;
            (acc, false)
        | Some dir ->
            let path = shard_path dir shard in
            let acc, start =
              if resume && Sys.file_exists path then
                match load_shard path ~lo ~hi with
                | Ok (next, acc) -> (acc, next)
                | Error reason ->
                    on_warning
                      (Printf.sprintf "shard %d checkpoint %s: %s — recomputing shard from \
                                       scratch" shard path reason);
                    (acc_create (), lo)
              else (acc_create (), lo)
            in
            (* Chunked execution: the live backend's in-flight window
               drains completely at each chunk boundary, so a checkpoint
               always describes a seed-prefix of the shard. *)
            let next = ref start in
            let stop = ref false in
            while !next < hi && not !stop do
              let chunk_hi = min hi (!next + checkpoint_every) in
              alloc_delta (fun () -> run_range ~lo:!next ~hi:chunk_hi acc) acc;
              next := chunk_hi;
              save_shard path ~lo ~hi ~next:!next acc;
              if kill_switch () then stop := true
            done;
            (acc, !next < hi))
  in
  (* merge on the submitting domain, in shard order *)
  let agg = Obs.Agg.create () in
  let lat = Obs.Hist.create () in
  let profiles = Stbl.create 16 in
  let completed = ref 0 in
  let alloc_words = ref 0.0 in
  Array.iter
    (fun ((a : acc), _) ->
      Obs.Agg.merge_into ~dst:agg a.agg;
      Obs.Hist.merge_into ~dst:lat a.lat;
      completed := !completed + a.completed;
      alloc_words := !alloc_words +. a.alloc_words;
      Stbl.iter
        (fun k n ->
          let m = match Stbl.find_opt profiles k with Some m -> m | None -> 0 in
          Stbl.replace profiles k (m + n))
        a.profiles)
    shard_accs;
  if Array.exists (fun (_, interrupted) -> interrupted) shard_accs then raise Interrupted;
  let profiles = profiles_sorted profiles in
  {
    sessions;
    completed = !completed;
    profiles;
    agg;
    latency = lat;
    wall_s = Runner.now () -. t0;
    alloc_words = !alloc_words;
  }

let det_repr s =
  Printf.sprintf "sessions=%d completed=%d profiles=[%s] agg{%s} metrics{%s}" s.sessions
    s.completed
    (String.concat "; "
       (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) s.profiles))
    (Obs.Agg.summary_repr (Obs.Agg.summary s.agg))
    (Obs.Metrics.det_repr (Obs.Agg.total s.agg))

let sessions_per_min s =
  if s.wall_s > 0.0 then 60.0 *. float_of_int s.sessions /. s.wall_s else 0.0

let messages_per_sec s =
  if s.wall_s > 0.0 then
    float_of_int (Obs.Metrics.delivered_total (Obs.Agg.total s.agg)) /. s.wall_s
  else 0.0

let latency_us s = (Obs.Hist.percentile s.latency 50, Obs.Hist.percentile s.latency 99)

let words_per_session s =
  if s.sessions > 0 then s.alloc_words /. float_of_int s.sessions else 0.0

let throughput_line s =
  let p50, p99 = latency_us s in
  Printf.sprintf
    "%.0f sessions/min  %.0f msgs/sec  latency p50=%dus p99=%dus  %.0f words/session  \
     wall=%.3fs"
    (sessions_per_min s) (messages_per_sec s) p50 p99 (words_per_session s) s.wall_s
