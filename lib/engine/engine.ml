module Toy = Toy

module Runner = Sim.Runner
module Types = Sim.Types

type stats = {
  sessions : int;
  completed : int;
  profiles : (string * int) list;
  agg : Obs.Agg.t;
  latency : Obs.Hist.t;
  wall_s : float;
}

(* Per-shard accumulator: every completed session folds in immediately,
   so shard memory is O(1) in the number of sessions. All fields are
   insertion-order independent once canonicalised (the profile table is
   key-sorted at merge), which is what makes the merged result
   invariant under shard count, pool size and in-flight interleaving. *)
type acc = {
  agg : Obs.Agg.t;
  lat : Obs.Hist.t;
  profiles : (string, int) Hashtbl.t;
  mutable completed : int;
}

let acc_create () =
  {
    agg = Obs.Agg.create ();
    lat = Obs.Hist.create ();
    profiles = Hashtbl.create 16;
    completed = 0;
  }

let note acc ~profile ~t0 (o : 'a Types.outcome) =
  Obs.Agg.add_run acc.agg o.Types.metrics;
  Obs.Hist.add acc.lat (int_of_float ((Runner.now () -. t0) *. 1e6));
  (match o.Types.termination with
  | Types.All_halted -> acc.completed <- acc.completed + 1
  | _ -> ());
  let p = profile o in
  let n = match Hashtbl.find_opt acc.profiles p with Some n -> n | None -> 0 in
  Hashtbl.replace acc.profiles p (n + 1)

(* Sim backend: each session is a synchronous Runner.run. *)
let sim_shard ~make ~profile ~lo ~hi acc =
  for seed = lo to hi - 1 do
    let t0 = Runner.now () in
    note acc ~profile ~t0 (Runner.run (make ~seed))
  done

(* Live backend: an in-flight window of fiber sessions multiplexed on
   this shard's domain, stepped round-robin. Session state is
   struct-of-arrays: parallel slot arrays for the live handle and the
   start timestamp. Sessions share no state, so the interleaving cannot
   change any session's outcome — only latency. *)
let live_shard ~inflight ~make ~profile ~lo ~hi acc =
  let window = min inflight (max 0 (hi - lo)) in
  if window > 0 then begin
    let handles = Array.make window None in
    let t0s = Array.make window 0.0 in
    let next = ref lo in
    let active = ref 0 in
    let fill slot =
      if !next < hi then begin
        t0s.(slot) <- Runner.now ();
        handles.(slot) <- Some (Transport.Live.start (make ~seed:!next));
        incr next;
        incr active
      end
    in
    for s = 0 to window - 1 do
      fill s
    done;
    while !active > 0 do
      for s = 0 to window - 1 do
        match handles.(s) with
        | None -> ()
        | Some l -> (
            match Transport.Live.step l with
            | `Running -> ()
            | `Done o ->
                handles.(s) <- None;
                decr active;
                note acc ~profile ~t0:t0s.(s) o;
                fill s)
      done
    done
  end

let run ?(backend = Transport.Backend.Sim) ?(shards = 1) ?(inflight = 16)
    ?(pool = Parallel.Pool.sequential) ~sessions ~make ~profile () =
  if sessions < 0 then
    invalid_arg (Printf.sprintf "Engine.run: sessions must be >= 0 (got %d)" sessions);
  if shards < 1 then
    invalid_arg (Printf.sprintf "Engine.run: shards must be > 0 (got %d)" shards);
  if inflight < 1 then
    invalid_arg (Printf.sprintf "Engine.run: inflight must be > 0 (got %d)" inflight);
  let t0 = Runner.now () in
  let per = if shards = 0 then 0 else (sessions + shards - 1) / shards in
  (* chunk:1 — shards are the stealing unit, so one slow shard cannot
     serialise the tail behind a fixed pre-assignment *)
  let shard_accs =
    Parallel.Pool.map_seeded ~chunk:1 ~pool ~seeds:(0, shards) (fun shard ->
        let lo = min sessions (shard * per) and hi = min sessions ((shard + 1) * per) in
        let acc = acc_create () in
        (match backend with
        | Transport.Backend.Sim -> sim_shard ~make ~profile ~lo ~hi acc
        | Transport.Backend.Live -> live_shard ~inflight ~make ~profile ~lo ~hi acc);
        acc)
  in
  (* merge on the submitting domain, in shard order *)
  let agg = Obs.Agg.create () in
  let lat = Obs.Hist.create () in
  let profiles = Hashtbl.create 16 in
  let completed = ref 0 in
  Array.iter
    (fun (a : acc) ->
      Obs.Agg.merge_into ~dst:agg a.agg;
      Obs.Hist.merge_into ~dst:lat a.lat;
      completed := !completed + a.completed;
      Hashtbl.iter
        (fun k n ->
          let m = match Hashtbl.find_opt profiles k with Some m -> m | None -> 0 in
          Hashtbl.replace profiles k (m + n))
        a.profiles)
    shard_accs;
  let profiles =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k n l -> (k, n) :: l) profiles [])
  in
  {
    sessions;
    completed = !completed;
    profiles;
    agg;
    latency = lat;
    wall_s = Runner.now () -. t0;
  }

let det_repr s =
  Printf.sprintf "sessions=%d completed=%d profiles=[%s] agg{%s} metrics{%s}" s.sessions
    s.completed
    (String.concat "; "
       (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) s.profiles))
    (Obs.Agg.summary_repr (Obs.Agg.summary s.agg))
    (Obs.Metrics.det_repr (Obs.Agg.total s.agg))

let sessions_per_min s =
  if s.wall_s > 0.0 then 60.0 *. float_of_int s.sessions /. s.wall_s else 0.0

let messages_per_sec s =
  if s.wall_s > 0.0 then
    float_of_int (Obs.Metrics.delivered_total (Obs.Agg.total s.agg)) /. s.wall_s
  else 0.0

let latency_us s = (Obs.Hist.percentile s.latency 50, Obs.Hist.percentile s.latency 99)

let throughput_line s =
  let p50, p99 = latency_us s in
  Printf.sprintf
    "%.0f sessions/min  %.0f msgs/sec  latency p50=%dus p99=%dus  wall=%.3fs"
    (sessions_per_min s) (messages_per_sec s) p50 p99 s.wall_s
