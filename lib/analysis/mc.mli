(** Stateful model checker over the simulator semantics.

    Replaces {!Sim.Explore}'s blind depth-first enumeration with dynamic
    partial-order reduction (DPOR): two deliveries commute whenever they
    target different destination processes — a process is a deterministic
    function of its local delivery sequence, so swapping deliveries to
    different processes yields the same behaviour (the same independence
    fact {!Race} exploits, and the reason [Faults.Plan] may treat
    deliveries as order-independent). The checker explores one canonical
    interleaving per Mazurkiewicz class, computes the happens-before
    relation of each executed trace (send-ancestry + per-destination
    program order), and for every {e race} — an adjacent-swappable
    dependent pair — schedules a backtrack branch; sleep sets prevent
    re-exploring classes already covered. Start signals are delivered
    eagerly (the runner activates start before the first receive
    regardless of schedule, so this is behaviour-preserving — the same
    normalisation {!Race.analyze}'s recorder uses).

    Exploration runs as parallel frontier rounds over [Parallel.Pool]:
    each round replays the queued branch points concurrently, and the
    results are folded sequentially in queue order, so every verdict —
    classes, counterexamples, statistics — is byte-identical at any
    [-j] ({!repr} is the canonical serialisation the tests diff).

    Verdicts go beyond safety: outcome-confluence, per-outcome property
    violations with {e minimized} counterexample traces (greedy
    delivery-elision replay, pretty-printed through {!Sim.Trace_pp}),
    deadlock detection (pending messages whose destinations have all
    halted), starvation bounds (the worst steps-in-flight any delivered
    message waited — the bound {!Sim.Runner}'s fairness override needs),
    and — for relaxed systems — stopped-state coverage: every reachable
    [Stop_delivery] configuration is a happens-before downward-closed cut
    of some explored maximal trace, so enumerating cuts of the canonical
    representatives (deduplicated by per-destination delivery sequences)
    covers them all, mediator-batch atomicity included.

    State fingerprints (driver {!Sim.Runner.Step.state_hash} combined
    with an optional protocol digest such as [Mpc.Engine.digest]) count
    distinct states and converging branches; the [Graph] backend
    breadth-first-searches the state graph keyed by fingerprint, which is
    sound up to hash collision — see DESIGN.md section 13 for why DPOR
    itself never prunes on fingerprints. *)

type entry = { src : int; dst : int; seq : int }
(** A delivery, identified schedule-independently by its channel
    coordinates: the seq-th message from src to dst (the paper's
    (i,j,k)). *)

val pp_entry : Format.formatter -> entry -> unit

(** Fresh processes plus optional state hooks: [digest] hashes the
    protocol-level mutable state (closures the driver cannot see);
    [snapshot] clones the instance mid-run for replay-free branching via
    {!Sim.Runner.Step.clone}. Both must describe the {e same} state the
    [processes] closures read. *)
type ('m, 'a) instance = {
  processes : ('m, 'a) Sim.Types.process array;
  digest : (unit -> int) option;
  snapshot : (unit -> ('m, 'a) instance) option;
}

val plain : ('m, 'a) Sim.Types.process array -> ('m, 'a) instance
(** No digest, no snapshot. *)

type ('m, 'a) system = {
  sys_make : unit -> ('m, 'a) instance;
  sys_mediator : int option;
  sys_relaxed : bool;
      (** when true the environment may stop delivery: stopped cuts are
          enumerated and verdicts cover them *)
}

val system :
  ?mediator:int ->
  ?relaxed:bool ->
  (unit -> ('m, 'a) instance) ->
  ('m, 'a) system
(** [relaxed] defaults to false. [make] must return freshly-initialised
    state on every call, as in {!Sim.Explore.explore}. *)

val of_processes :
  ?mediator:int ->
  ?relaxed:bool ->
  (unit -> ('m, 'a) Sim.Types.process array) ->
  ('m, 'a) system
(** Convenience wrapper: {!system} over {!plain} instances. *)

type 'a property = {
  p_name : string;
  p_check :
    stopped:bool -> willed:'a option array -> 'a Sim.Types.outcome -> string option;
      (** [None] = holds; [Some reason] = violated. [willed] is
          [Runner.moves_with_wills] of the run's own processes;
          [stopped] marks a relaxed-environment stopped configuration
          (deadlock semantics: wills are in force). *)
}

val property :
  string ->
  (stopped:bool -> willed:'a option array -> 'a Sim.Types.outcome -> string option) ->
  'a property

type backend =
  | Dpor  (** persistent/sleep-set partial-order reduction (default) *)
  | Naive  (** {!Sim.Explore} reference enumeration, adapted *)
  | Graph
      (** fingerprint-keyed breadth-first state search — requires an
          instance [digest]; sound up to hash collision; rejects relaxed
          systems *)

(** One behaviourally distinct end state. *)
type 'a outcome_class = {
  cls_moves : 'a option array;
  cls_willed : 'a option array;
  cls_termination : Sim.Types.termination;
  cls_stopped : bool;  (** a relaxed stopped cut, not a maximal history *)
  cls_count : int;  (** explored traces/cuts landing in this class *)
  cls_witness : entry list;  (** delivery script of the first one *)
}

type 'a counterexample = {
  ce_property : string;
  ce_reason : string;
  ce_script : entry list;  (** minimized delivery script *)
  ce_starts : int list option;
      (** started processes, when restricted (stopped cuts); [None] =
          all *)
  ce_stopped : bool;
  ce_outcome : 'a Sim.Types.outcome;  (** replay of the minimized script *)
  ce_original : int;  (** deliveries in the un-minimized witness *)
}

type stats = {
  backend_name : string;
  runs : int;  (** complete replays performed *)
  traces : int;  (** maximal (complete) histories explored *)
  truncated : int;  (** histories cut by [max_steps] *)
  sleep_blocked : int;  (** branches pruned by sleep sets *)
  states : int;  (** distinct state fingerprints seen *)
  revisits : int;  (** fingerprint hits on already-seen states *)
  stop_cuts : int;  (** distinct stopped configurations replayed *)
  minimize_replays : int;
  max_frontier : int;
  capped : bool;  (** [max_states] stopped the search *)
}

type 'a verdict = {
  pass : bool;  (** no property violation found *)
  confluence : Sim.Explore.agreement;
      (** do all maximal histories agree on willed moves? *)
  classes : 'a outcome_class list;  (** canonically sorted *)
  violation : 'a counterexample option;
  deadlocks : int;
      (** distinct stuck states: messages pending, every destination
          halted *)
  worst_wait : int;
      (** max steps any delivered message spent pending — a sufficient
          starvation bound for these histories *)
  exhaustive : bool;
  stats : stats;
}

exception Replay_diverged of string
(** A strict replay did not find a scripted message pending — an
    internal-invariant failure, never expected on checker-produced
    scripts. *)

val check :
  ?backend:backend ->
  ?pool:Parallel.Pool.t ->
  ?max_states:int ->
  ?max_steps:int ->
  ?max_cuts:int ->
  ?max_minimize:int ->
  ?properties:'a property list ->
  ?require_confluence:bool ->
  ?fingerprints:bool ->
  ('m, 'a) system ->
  'a verdict
(** Explore the system and fold a verdict. Defaults: [Dpor] backend,
    [Parallel.Pool.sequential], [max_states] 100_000 (caps replays and
    queued branch points; exceeding it sets [stats.capped] and clears
    [exhaustive]), [max_steps] 10_000 deliveries per history, [max_cuts]
    4096 stopped cuts, [max_minimize] 1000 elision replays, no
    properties, [require_confluence] false (when true, non-confluence
    itself produces a minimized divergence counterexample), and
    [fingerprints] true (disable to skip per-state hashing on very long
    histories; [states]/[revisits]/[deadlocks] then read 0).
    @raise Invalid_argument for [Graph] without a digest or on a relaxed
    system. *)

val replay :
  ('m, 'a) system ->
  script:entry list ->
  ?starts:int list ->
  stopped:bool ->
  max_steps:int ->
  unit ->
  'a Sim.Types.outcome * 'a option array
(** Re-execute a counterexample script (guided: entries are delivered as
    they become pendable; with [stopped] the environment stops once the
    script is exhausted, otherwise oldest-first delivery completes the
    history). Returns the outcome and its willed moves — used to confirm
    counterexamples independently of the search. *)

val races_of_outcome : 'a Sim.Types.outcome -> (int * entry * entry) list
(** The dependent-but-reorderable delivery pairs of one run, [(dst,
    first, second)], computed from the checker's happens-before relation
    (send-ancestry closure). Cross-validated in the test suite against
    {!Race.candidates_of_outcome}'s vector-clock relation — the two must
    agree exactly. *)

val repr : ('a -> string) -> 'a verdict -> string
(** Canonical multi-line serialisation of a verdict — byte-identical at
    any [-j]; what the determinism tests diff and `ctmed check` prints
    under [--verbose]. *)

val pp_counterexample :
  mv:('a -> string) -> Format.formatter -> 'a counterexample -> unit
(** Human-readable counterexample: the minimized script, then the replay
    trace through {!Sim.Trace_pp.chart}. *)

val findings : subject:string -> 'a verdict -> Finding.t list
(** Violations as errors; capped/truncated/vacuous coverage as warnings
    — the `ctmed lint` / `make check` producer. *)
