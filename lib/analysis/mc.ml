open Sim

let analyzer = "model-check"

type entry = { src : int; dst : int; seq : int }

let pp_entry fmt e = Format.fprintf fmt "(%d->%d #%d)" e.src e.dst e.seq

type ('m, 'a) instance = {
  processes : ('m, 'a) Types.process array;
  digest : (unit -> int) option;
  snapshot : (unit -> ('m, 'a) instance) option;
}

let plain processes = { processes; digest = None; snapshot = None }

type ('m, 'a) system = {
  sys_make : unit -> ('m, 'a) instance;
  sys_mediator : int option;
  sys_relaxed : bool;
}

let system ?mediator ?(relaxed = false) make =
  { sys_make = make; sys_mediator = mediator; sys_relaxed = relaxed }

let of_processes ?mediator ?relaxed make =
  system ?mediator ?relaxed (fun () -> plain (make ()))

type 'a property = {
  p_name : string;
  p_check :
    stopped:bool -> willed:'a option array -> 'a Types.outcome -> string option;
}

let property p_name p_check = { p_name; p_check }

type backend = Dpor | Naive | Graph

type 'a outcome_class = {
  cls_moves : 'a option array;
  cls_willed : 'a option array;
  cls_termination : Types.termination;
  cls_stopped : bool;
  cls_count : int;
  cls_witness : entry list;
}

type 'a counterexample = {
  ce_property : string;
  ce_reason : string;
  ce_script : entry list;
  ce_starts : int list option;
  ce_stopped : bool;
  ce_outcome : 'a Types.outcome;
  ce_original : int;
}

type stats = {
  backend_name : string;
  runs : int;
  traces : int;
  truncated : int;
  sleep_blocked : int;
  states : int;
  revisits : int;
  stop_cuts : int;
  minimize_replays : int;
  max_frontier : int;
  capped : bool;
}

type 'a verdict = {
  pass : bool;
  confluence : Explore.agreement;
  classes : 'a outcome_class list;
  violation : 'a counterexample option;
  deadlocks : int;
  worst_wait : int;
  exhaustive : bool;
  stats : stats;
}

exception Replay_diverged of string

(* ------------------------------------------------------------------ *)
(* Bitsets over event indices (Bytes-backed: hb relations are quadratic
   in history length, so one bit per pair, not one list cell). *)

let bs_make n = Bytes.make ((n + 8) / 8) '\000'
let bs_get b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bs_set b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

let bs_union a b =
  for k = 0 to Bytes.length a - 1 do
    Bytes.set a k (Char.chr (Char.code (Bytes.get a k) lor Char.code (Bytes.get b k)))
  done

(* ------------------------------------------------------------------ *)
(* Happens-before over one executed history.

   Events are the real message deliveries, in execution order; [sp.(k)]
   is the index of the delivery whose activation sent event k's message
   (-1 when a start activation sent it). Derived relations, as index
   bitsets:

     sendpast(k) = {sp(k)} ∪ hb(sp(k))      (the causal past of the SEND)
     hb(k)       = sendpast(k) ∪ {p(k)} ∪ hb(p(k))
                   where p(k) = previous delivery to the same destination
                   (a process is a function of its delivery sequence, so
                   per-destination order is causal).

   Two deliveries i < j to the same destination are a RACE when
   i ∉ sendpast(j): j's message already existed when i was delivered, so
   their order was the environment's free choice — exactly the
   vector-clock candidate condition of {!Race}. *)

let hb_of ~(events : entry array) ~(sp : int array) =
  let l = Array.length events in
  let hb = Array.init l (fun _ -> bs_make l) in
  let spast = Array.init l (fun _ -> bs_make l) in
  let last : (int, int) Hashtbl.t = Hashtbl.create 16 in
  for k = 0 to l - 1 do
    if sp.(k) >= 0 then begin
      bs_set spast.(k) sp.(k);
      bs_union spast.(k) hb.(sp.(k))
    end;
    bs_union hb.(k) spast.(k);
    (match Hashtbl.find_opt last events.(k).dst with
    | Some p ->
        bs_set hb.(k) p;
        bs_union hb.(k) hb.(p)
    | None -> ());
    Hashtbl.replace last events.(k).dst k
  done;
  (hb, spast)

(* Races of one run, with the DPOR backtrack alternative: for a race
   (i, j) the branch to queue at node i is event u, the earliest index
   >= i in sendpast(j) ∪ {j}. By minimality every element of u's own
   send-past lies strictly below i, so u's message is pending at node i
   and a strict replay of prefix(i) @ [u] cannot diverge. *)
let races_of ~events ~sp ~cap =
  let l = Array.length events in
  let _hb, spast = hb_of ~events ~sp in
  let races = ref [] in
  let count = ref 0 in
  let capped = ref false in
  let bydst : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  for j = 0 to l - 1 do
    let d = events.(j).dst in
    let prev = try Hashtbl.find bydst d with Not_found -> [] in
    List.iter
      (fun i ->
        if not (bs_get spast.(j) i) then begin
          if !count >= cap then capped := true
          else begin
            incr count;
            let u = ref j in
            (try
               for m = i to j - 1 do
                 if bs_get spast.(j) m then begin
                   u := m;
                   raise Exit
                 end
               done
             with Exit -> ());
            races := (i, j, !u) :: !races
          end
        end)
      prev;
    Hashtbl.replace bydst d (j :: prev)
  done;
  (List.rev !races, !capped)

(* ------------------------------------------------------------------ *)
(* Rebuild (events, sp) from a recorded trace (the naive backend's
   histories and [races_of_outcome]). Each [Sent] is attributed to the
   delivery whose activation emitted it; a [Started] directly after a
   delivery with nothing emitted yet is the implicit start the runner
   performs before a first receive (same disambiguation as
   [Race.slots_of_trace]) and keeps the attribution; explicit start
   activations attribute their sends to -1. *)
let events_of_trace trace =
  let sent_by : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let events = ref [] in
  let sp = ref [] in
  let nev = ref 0 in
  let cur = ref (-1) in
  let fresh = ref false in
  List.iter
    (fun ev ->
      match (ev : 'a Types.trace_event) with
      | Types.Delivered { src; dst; seq } when src <> Types.env_pid ->
          let parent = try Hashtbl.find sent_by (src, dst, seq) with Not_found -> -1 in
          events := { src; dst; seq } :: !events;
          sp := parent :: !sp;
          cur := !nev;
          incr nev;
          fresh := true
      | Types.Delivered _ ->
          cur := -1;
          fresh := false
      | Types.Started p -> (
          match !events with
          | e :: _ when !fresh && !cur >= 0 && e.dst = p -> ()
          | _ ->
              cur := -1;
              fresh := false)
      | Types.Sent { src; dst; seq } ->
          Hashtbl.replace sent_by (src, dst, seq) !cur;
          fresh := false
      | Types.Moved _ | Types.Halted _ -> fresh := false
      | Types.Dropped _ | Types.Fault _ -> ())
    trace;
  (Array.of_list (List.rev !events), Array.of_list (List.rev !sp))

let races_of_outcome (o : 'a Types.outcome) =
  let events, sp = events_of_trace o.Types.trace in
  let races, _capped = races_of ~events ~sp ~cap:max_int in
  List.map (fun (i, j, _u) -> (events.(i).dst, events.(i), events.(j))) races

(* ------------------------------------------------------------------ *)
(* One execution of the system under the checker's control.

   Strict mode (DPOR branches): the script must be deliverable verbatim
   — every entry pending when its turn comes ([Replay_diverged]
   otherwise, an internal invariant). Once the script is consumed the
   item's sleep set takes effect and the policy delivers the oldest
   pending message not in it (filtering the sleep set after every
   delivery: a sleeping event wakes when a dependent delivery — same
   destination — executes). All enabled asleep means the whole subtree
   is covered by sibling branches: the run is blocked, no outcome.

   Guided mode (counterexample replay): deliver the first script entry
   currently pendable, retrying skipped ones later — causality
   re-linearises the script, so any per-destination-order-preserving
   permutation replays to the same behaviour. With [stop_after] the
   environment stops delivery once no script entry is pendable (the
   relaxed Stop_delivery, mediator-batch atomicity included); otherwise
   oldest-first delivery completes the history. [starts] restricts which
   explicit start signals are delivered (stopped-cut replays: the
   environment never started the others). *)

type 'a exec_res = {
  x_events : entry array;
  x_sp : int array;
  x_sleep_at : entry list array;  (* sleep set at each policy node *)
  x_outcome : 'a Types.outcome option;  (* None: sleep-blocked *)
  x_willed : 'a option array option;
  x_truncated : bool;
  x_fps : int array;  (* state fingerprint before each decision *)
  x_stuck : int option;  (* first stuck-state fingerprint *)
  x_worst : int;  (* worst delivery wait, in steps *)
}

let combine_fp h d = (((h lxor (d land max_int)) * 0x01000193) lor 1) land max_int

let exec ~sys ~guided ~stop_after ~starts ~script ~sleep ~max_steps ~fingerprints =
  let inst = sys.sys_make () in
  let st = Runner.Step.create ?mediator:sys.sys_mediator inst.processes in
  (match starts with
  | None -> Runner.Step.deliver_starts st
  | Some pids ->
      List.iter
        (fun pid ->
          match
            Pending_set.find (Runner.Step.pending st) (fun v ->
                v.Types.src = Types.env_pid && v.Types.dst = pid)
          with
          | Some v -> Runner.Step.deliver st ~id:v.Types.id
          | None -> ())
        (List.sort_uniq compare pids));
  let fp () =
    let h = Runner.Step.state_hash st in
    match inst.digest with Some d -> combine_fp h (d ()) | None -> h
  in
  let sent_by : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let remaining = ref script in
  let sleep_cur = ref (if script = [] then sleep else []) in
  let events = ref [] in
  let nev = ref 0 in
  let sleep_log = ref [] in
  let fps = ref [] in
  let stuck = ref None in
  let worst = ref 0 in
  let truncated = ref false in
  let outcome = ref None in
  let deliver_view (v : Types.pending_view) =
    let wait = Runner.Step.steps st - v.Types.sent_step in
    if wait > !worst then worst := wait;
    let s0 = Runner.Step.steps st in
    let e = { src = v.Types.src; dst = v.Types.dst; seq = v.Types.seq } in
    Runner.Step.deliver st ~id:v.Types.id;
    (* the sends of this activation (implicit start included) carry this
       step's stamp: attribute them to this event *)
    Pending_set.iter (Runner.Step.pending st) (fun w ->
        if w.Types.sent_step = s0 then
          Hashtbl.replace sent_by (w.Types.src, w.Types.dst, w.Types.seq) !nev);
    events := e :: !events;
    incr nev;
    sleep_cur := List.filter (fun z -> z.dst <> e.dst) !sleep_cur
  in
  let rec go () =
    let h = if fingerprints then fp () else 0 in
    if fingerprints then begin
      fps := h :: !fps;
      if !stuck = None && Runner.Step.pending_all_halted st then stuck := Some h
    end;
    if guided then begin
      let rec pick acc = function
        | [] -> None
        | e :: rest -> (
            match Runner.Step.find st ~src:e.src ~dst:e.dst ~seq:e.seq with
            | Some v ->
                remaining := List.rev_append acc rest;
                Some v
            | None -> pick (e :: acc) rest)
      in
      match pick [] !remaining with
      | Some _ when !nev >= max_steps ->
          truncated := true;
          outcome := Some (Runner.Step.cutoff st)
      | Some v ->
          deliver_view v;
          go ()
      | None ->
          if stop_after then outcome := Some (Runner.Step.stop st)
          else if Pending_set.is_empty (Runner.Step.pending st) then
            outcome := Some (Runner.Step.finish st)
          else if !nev >= max_steps then begin
            truncated := true;
            outcome := Some (Runner.Step.cutoff st)
          end
          else begin
            deliver_view (Pending_set.oldest (Runner.Step.pending st));
            go ()
          end
    end
    else if Pending_set.is_empty (Runner.Step.pending st) then
      outcome := Some (Runner.Step.finish st)
    else if !nev >= max_steps then begin
      truncated := true;
      outcome := Some (Runner.Step.cutoff st)
    end
    else
      match !remaining with
      | e :: rest -> (
          match Runner.Step.find st ~src:e.src ~dst:e.dst ~seq:e.seq with
          | Some v ->
              remaining := rest;
              deliver_view v;
              if rest = [] then sleep_cur := sleep;
              go ()
          | None ->
              raise
                (Replay_diverged
                   (Format.asprintf "scripted delivery %a is not pending" pp_entry e)))
      | [] -> (
          sleep_log := !sleep_cur :: !sleep_log;
          let slp = !sleep_cur in
          match
            Pending_set.find (Runner.Step.pending st) (fun v ->
                not
                  (List.exists
                     (fun z ->
                       z.src = v.Types.src && z.dst = v.Types.dst && z.seq = v.Types.seq)
                     slp))
          with
          | Some v ->
              deliver_view v;
              go ()
          | None -> () (* all enabled asleep: subtree covered elsewhere *))
  in
  go ();
  let events_arr = Array.of_list (List.rev !events) in
  let sp =
    Array.map
      (fun e -> try Hashtbl.find sent_by (e.src, e.dst, e.seq) with Not_found -> -1)
      events_arr
  in
  {
    x_events = events_arr;
    x_sp = sp;
    x_sleep_at = Array.of_list (List.rev !sleep_log);
    x_outcome = !outcome;
    x_willed = Option.map (Runner.moves_with_wills inst.processes) !outcome;
    x_truncated = !truncated;
    x_fps = Array.of_list (List.rev !fps);
    x_stuck = !stuck;
    x_worst = !worst;
  }

let replay sys ~script ?starts ~stopped ~max_steps () =
  let xr =
    exec ~sys ~guided:true ~stop_after:stopped ~starts ~script ~sleep:[] ~max_steps
      ~fingerprints:false
  in
  match (xr.x_outcome, xr.x_willed) with
  | Some o, Some w -> (o, w)
  | _ -> raise (Replay_diverged "replay produced no outcome")

(* ------------------------------------------------------------------ *)
(* Rendering helpers (shared by repr / pp_counterexample / findings). *)

let term_str = function
  | Types.All_halted -> "all-halted"
  | Types.Quiescent -> "quiescent"
  | Types.Deadlocked -> "stopped"
  | Types.Cutoff -> "cutoff"
  | Types.Timed_out -> "timed-out"

let agreement_str = function
  | Explore.Agree -> "agree"
  | Explore.Disagree -> "disagree"
  | Explore.Vacuous -> "vacuous"

let arr_str mv a =
  "["
  ^ String.concat " "
      (Array.to_list (Array.map (function None -> "." | Some x -> mv x) a))
  ^ "]"

let script_str s =
  String.concat ","
    (List.map (fun e -> Printf.sprintf "%d>%d#%d" e.src e.dst e.seq) s)

(* Serialized prefix keys for the DPOR node table: explicit encoding, not
   a polymorphic hash of a long list (collisions there would silently
   merge distinct nodes). *)
let add_entry_key buf e =
  Buffer.add_string buf (string_of_int e.src);
  Buffer.add_char buf ',';
  Buffer.add_string buf (string_of_int e.dst);
  Buffer.add_char buf ',';
  Buffer.add_string buf (string_of_int e.seq);
  Buffer.add_char buf ';'

(* A branch point of the exploration tree, keyed by its serialized event
   prefix. [n_taken] accumulates the alternatives explored (or queued)
   from here, [n_sleep] is the sleep set the first visitor recorded. *)
type dpor_node = { n_sleep : entry list; mutable n_taken : entry list }

type dpor_item = { it_script : entry list; it_sleep : entry list }

type 'a raw_violation = {
  rv_name : string;
  rv_reason : string;
  rv_check :
    stopped:bool -> willed:'a option array -> 'a Types.outcome -> string option;
  rv_script : entry list;
  rv_starts : int list option;
  rv_stopped : bool;
  rv_outcome : 'a Types.outcome option;
}

let race_cap = 200_000

let check ?(backend = Dpor) ?(pool = Parallel.Pool.sequential)
    ?(max_states = 100_000) ?(max_steps = 10_000) ?(max_cuts = 4096)
    ?(max_minimize = 1000) ?(properties = []) ?(require_confluence = false)
    ?(fingerprints = true) sys =
  (* ---- fold state: mutated only in the calling domain, in queue order,
     so every verdict field is a pure function of the system ---- *)
  let fp_seen : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let stuck_seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let states = ref 0 and revisits = ref 0 in
  let runs = ref 0 and traces = ref 0 and truncated = ref 0 in
  let sleep_blocked = ref 0 and stop_cuts = ref 0 in
  let worst = ref 0 in
  let capped = ref false in
  let incomplete = ref false in (* race-cap / cut-cap / naive overflow *)
  let max_frontier = ref 0 in
  let min_replays = ref 0 in
  let cls_tbl = Hashtbl.create 64 in
  let cls_order = ref [] in
  let violation = ref None in
  let merge_fps arr =
    Array.iter
      (fun h ->
        if Hashtbl.mem fp_seen h then incr revisits
        else begin
          Hashtbl.replace fp_seen h ();
          incr states
        end)
      arr
  in
  let record_outcome ~stopped ~script ~starts (o : _ Types.outcome) willed =
    let key =
      (stopped, o.Types.termination, Array.copy o.Types.moves, Array.copy willed)
    in
    (match Hashtbl.find_opt cls_tbl key with
    | Some cnt -> incr cnt
    | None ->
        Hashtbl.replace cls_tbl key (ref 1);
        cls_order := (key, script) :: !cls_order);
    if !violation = None then
      List.iter
        (fun p ->
          if !violation = None then
            match p.p_check ~stopped ~willed o with
            | Some reason ->
                violation :=
                  Some
                    {
                      rv_name = p.p_name;
                      rv_reason = reason;
                      rv_check = p.p_check;
                      rv_script = script;
                      rv_starts = starts;
                      rv_stopped = stopped;
                      rv_outcome = Some o;
                    }
            | None -> ())
        properties
  in
  (* ---- relaxed stop-cut coverage: every reachable stopped
     configuration is an hb-downward-closed cut of some maximal history
     (per-destination delivery sequences determine process state), taken
     under some subset of started processes. Cuts are canonicalised by
     (start set, per-destination subsequences) so equivalent cuts from
     different representatives replay once. ---- *)
  let cut_seen : (int * entry list, unit) Hashtbl.t = Hashtbl.create 64 in
  let cut_visits = ref 0 in
  let cut_visit_budget = max_cuts * 64 in
  let do_cuts ~events ~sp (o : _ Types.outcome) =
    let l = Array.length events in
    let n = Array.length o.Types.moves in
    let hb, _spast = hb_of ~events ~sp in
    let full = (1 lsl n) - 1 in
    let masks =
      if n > 16 then [ full ] else List.init (full + 1) (fun i -> full - i)
    in
    if n > 16 then incomplete := true;
    let included = Array.make l false in
    let emit smask =
      incr cut_visits;
      if !cut_visits > cut_visit_budget then incomplete := true
      else begin
        let cut = ref [] in
        let csize = ref 0 in
        for k = l - 1 downto 0 do
          if included.(k) then begin
            cut := events.(k) :: !cut;
            incr csize
          end
        done;
        (* the full cut under all starts is the maximal history itself *)
        if not (smask = full && !csize = l) then begin
          let canon =
            List.stable_sort (fun a b -> compare a.dst b.dst) !cut
          in
          let key = (smask, canon) in
          if not (Hashtbl.mem cut_seen key) then begin
            Hashtbl.replace cut_seen key ();
            if !stop_cuts >= max_cuts then incomplete := true
            else begin
              incr stop_cuts;
              incr runs;
              let starts =
                List.filter
                  (fun p -> smask land (1 lsl p) <> 0)
                  (List.init n (fun i -> i))
              in
              let xr =
                exec ~sys ~guided:true ~stop_after:true ~starts:(Some starts)
                  ~script:canon ~sleep:[] ~max_steps ~fingerprints:false
              in
              match (xr.x_outcome, xr.x_willed) with
              | Some o', Some w when not xr.x_truncated ->
                  record_outcome ~stopped:true ~script:canon
                    ~starts:(Some starts) o' w
              | _ -> ()
            end
          end
        end
      end
    in
    List.iter
      (fun smask ->
        if !cut_visits <= cut_visit_budget then begin
          (* an event is admissible iff its destination started and its
             message exists: sent by a started process's start activation
             or by an admissible (hence included-able) delivery *)
          let adm = Array.make l false in
          for k = 0 to l - 1 do
            let e = events.(k) in
            let src_ok =
              if sp.(k) >= 0 then adm.(sp.(k))
              else e.src >= 0 && e.src < n && smask land (1 lsl e.src) <> 0
            in
            adm.(k) <-
              e.dst >= 0 && e.dst < n && smask land (1 lsl e.dst) <> 0 && src_ok
          done;
          (* exclude-first DFS over downward-closed subsets: small cuts
             surface first under the visit budget *)
          let rec go k =
            if !cut_visits > cut_visit_budget then ()
            else if k >= l then emit smask
            else if not adm.(k) then begin
              included.(k) <- false;
              go (k + 1)
            end
            else begin
              included.(k) <- false;
              go (k + 1);
              let closed =
                try
                  for j = 0 to k - 1 do
                    if bs_get hb.(k) j && not included.(j) then raise Exit
                  done;
                  true
                with Exit -> false
              in
              if closed && !cut_visits <= cut_visit_budget then begin
                included.(k) <- true;
                go (k + 1);
                included.(k) <- false
              end
            end
          in
          go 0
        end)
      masks
  in
  let fold_maximal xr =
    merge_fps xr.x_fps;
    (match xr.x_stuck with
    | Some h -> Hashtbl.replace stuck_seen h ()
    | None -> ());
    if xr.x_worst > !worst then worst := xr.x_worst;
    match xr.x_outcome with
    | None -> incr sleep_blocked
    | Some o ->
        if xr.x_truncated then incr truncated
        else begin
          incr traces;
          let willed =
            match xr.x_willed with Some w -> w | None -> o.Types.moves
          in
          record_outcome ~stopped:false ~script:(Array.to_list xr.x_events)
            ~starts:None o willed;
          if sys.sys_relaxed then do_cuts ~events:xr.x_events ~sp:xr.x_sp o
        end
  in
  (* ---- DPOR backend ---- *)
  let run_dpor () =
    let nodes : (string, dpor_node) Hashtbl.t = Hashtbl.create 256 in
    let frontier = ref [ { it_script = []; it_sleep = [] } ] in
    let queued = ref 1 in
    let process_backtracks it xr backtracks =
      let script_len = List.length it.it_script in
      let buf = Buffer.create 256 in
      let pos = ref 0 in
      let additions = ref [] in
      List.iter
        (fun (i, u) ->
          while !pos < i do
            add_entry_key buf xr.x_events.(!pos);
            incr pos
          done;
          let key = Buffer.contents buf in
          let nd =
            match Hashtbl.find_opt nodes key with
            | Some nd -> nd
            | None ->
                (* policy-region nodes carry the sleep set the run saw
                   there; mid-script interior nodes of other branches
                   start empty (an under-approximation: sound, possibly
                   redundant exploration, never a missed class) *)
                let sleep0 =
                  if i >= script_len then xr.x_sleep_at.(i - script_len)
                  else []
                in
                let nd = { n_sleep = sleep0; n_taken = [] } in
                Hashtbl.replace nodes key nd;
                nd
          in
          let cur = xr.x_events.(i) in
          if not (List.mem cur nd.n_taken) then nd.n_taken <- nd.n_taken @ [ cur ];
          if List.mem u nd.n_taken || List.mem u nd.n_sleep then ()
          else if !queued >= max_states then capped := true
          else begin
            (* the new branch sleeps on every sibling already explored
               from here that is independent of u (different dst): their
               subtrees cover those classes *)
            let sleep_new =
              List.filter (fun z -> z.dst <> u.dst) (nd.n_sleep @ nd.n_taken)
            in
            nd.n_taken <- nd.n_taken @ [ u ];
            let script = Array.to_list (Array.sub xr.x_events 0 i) @ [ u ] in
            let ckey =
              let b = Buffer.create 16 in
              Buffer.add_string b key;
              add_entry_key b u;
              Buffer.contents b
            in
            if not (Hashtbl.mem nodes ckey) then
              Hashtbl.replace nodes ckey { n_sleep = sleep_new; n_taken = [] };
            additions := { it_script = script; it_sleep = sleep_new } :: !additions;
            incr queued
          end)
        backtracks;
      List.rev !additions
    in
    while !frontier <> [] do
      let items = Array.of_list !frontier in
      frontier := [];
      if Array.length items > !max_frontier then max_frontier := Array.length items;
      let results =
        Parallel.Pool.map_array ~pool items (fun it ->
            let xr =
              exec ~sys ~guided:false ~stop_after:false ~starts:None
                ~script:it.it_script ~sleep:it.it_sleep ~max_steps ~fingerprints
            in
            let races, rcapped =
              (* a truncated prefix already clears [exhaustive]; its races
                 would only queue branches that re-truncate, and on long
                 prefixes the quadratic race scan dominates everything *)
              if xr.x_truncated then ([], false)
              else races_of ~events:xr.x_events ~sp:xr.x_sp ~cap:race_cap
            in
            let bts =
              List.sort_uniq compare
                (List.map (fun (i, _j, u) -> (i, xr.x_events.(u))) races)
            in
            (xr, bts, rcapped))
      in
      let next = ref [] in
      Array.iteri
        (fun idx (xr, bts, rcapped) ->
          incr runs;
          if rcapped then incomplete := true;
          fold_maximal xr;
          let adds = process_backtracks items.(idx) xr bts in
          next := List.rev_append adds !next)
        results;
      frontier := List.rev !next
    done
  in
  (* ---- naive backend: Sim.Explore's blind DFS as ground truth ---- *)
  let run_naive () =
    let probe = sys.sys_make () in
    let has_wills =
      Array.exists
        (fun (p : _ Types.process) -> p.Types.will () <> None)
        probe.processes
    in
    let r =
      Explore.explore ~max_histories:max_states ~max_steps
        ~make:(fun () -> (sys.sys_make ()).processes)
        ()
    in
    if r.Explore.capped then capped := true;
    if not r.Explore.exhaustive then incomplete := true;
    List.iter
      (fun (o : _ Types.outcome) ->
        incr runs;
        if o.Types.termination = Types.Cutoff then incr truncated
        else begin
          incr traces;
          let events, sp = events_of_trace o.Types.trace in
          let script = Array.to_list events in
          let o, willed =
            (* Explore does not surface its processes, so wills are
               re-read through one deterministic replay per history —
               only when the system has wills at all *)
            if has_wills then begin
              incr runs;
              replay sys ~script ~stopped:false ~max_steps ()
            end
            else (o, o.Types.moves)
          in
          record_outcome ~stopped:false ~script ~starts:None o willed;
          if sys.sys_relaxed then do_cuts ~events ~sp o
        end)
      r.Explore.outcomes
  in
  (* ---- graph backend: BFS over fingerprinted states. Sound pruning on
     fingerprints needs the fingerprint to determine the state, hence the
     digest requirement; DPOR never prunes on them (unsound with sleep
     sets, see DESIGN.md section 13). ---- *)
  let run_graph () =
    if sys.sys_relaxed then
      invalid_arg "Mc.check: the Graph backend cannot cover relaxed (stop) environments";
    if (sys.sys_make ()).digest = None then
      invalid_arg
        "Mc.check: the Graph backend needs an instance digest (driver state alone \
         does not determine process state)";
    let fp_of st (inst : _ instance) =
      combine_fp (Runner.Step.state_hash st)
        (match inst.digest with Some d -> d () | None -> 0)
    in
    let boot () =
      let inst = sys.sys_make () in
      let st = Runner.Step.create ?mediator:sys.sys_mediator inst.processes in
      Runner.Step.deliver_starts st;
      (inst, st)
    in
    let replay_to script =
      let inst, st = boot () in
      let wrst = ref 0 in
      List.iter
        (fun e ->
          match Runner.Step.find st ~src:e.src ~dst:e.dst ~seq:e.seq with
          | Some v ->
              let w = Runner.Step.steps st - v.Types.sent_step in
              if w > !wrst then wrst := w;
              Runner.Step.deliver st ~id:v.Types.id
          | None ->
              raise
                (Replay_diverged
                   (Format.asprintf "graph replay: %a is not pending" pp_entry e)))
        script;
      (inst, st, !wrst)
    in
    let gworker script =
      let inst, st, wrst = replay_to script in
      let stuckp =
        if Runner.Step.pending_all_halted st then Some (fp_of st inst) else None
      in
      let pend = Pending_set.to_list (Runner.Step.pending st) in
      if pend = [] then begin
        let o = Runner.Step.finish st in
        `Terminal (o, Runner.moves_with_wills inst.processes o, wrst, stuckp)
      end
      else if List.length script >= max_steps then `Truncated (wrst, stuckp)
      else begin
        let nreplays = ref 1 in
        let kids =
          List.map
            (fun (v : Types.pending_view) ->
              let e = { src = v.Types.src; dst = v.Types.dst; seq = v.Types.seq } in
              let h =
                match inst.snapshot with
                | Some snap ->
                    (* replay-free branching: fork protocol state through
                       the snapshot hook, driver state through clone *)
                    let inst2 = snap () in
                    let st2 = Runner.Step.clone st ~processes:inst2.processes in
                    (match
                       Runner.Step.find st2 ~src:e.src ~dst:e.dst ~seq:e.seq
                     with
                    | Some v2 -> Runner.Step.deliver st2 ~id:v2.Types.id
                    | None -> raise (Replay_diverged "graph clone lost a message"));
                    fp_of st2 inst2
                | None ->
                    incr nreplays;
                    let inst2, st2, _ = replay_to (script @ [ e ]) in
                    fp_of st2 inst2
              in
              (e, h))
            pend
        in
        `Expand (kids, wrst, stuckp, !nreplays)
      end
    in
    (let inst0, st0 = boot () in
     Hashtbl.replace fp_seen (fp_of st0 inst0) ();
     incr states);
    let frontier = ref [ [] ] in
    let discovered = ref 1 in
    while !frontier <> [] do
      let items = Array.of_list !frontier in
      frontier := [];
      if Array.length items > !max_frontier then max_frontier := Array.length items;
      let results = Parallel.Pool.map_array ~pool items gworker in
      let next = ref [] in
      Array.iteri
        (fun idx res ->
          let script = items.(idx) in
          let common wrst stuckp nr =
            runs := !runs + nr;
            if wrst > !worst then worst := wrst;
            match stuckp with
            | Some h -> Hashtbl.replace stuck_seen h ()
            | None -> ()
          in
          match res with
          | `Terminal (o, willed, wrst, stuckp) ->
              common wrst stuckp 1;
              incr traces;
              record_outcome ~stopped:false ~script ~starts:None o willed
          | `Truncated (wrst, stuckp) ->
              common wrst stuckp 1;
              incr truncated
          | `Expand (kids, wrst, stuckp, nr) ->
              common wrst stuckp nr;
              List.iter
                (fun (e, h) ->
                  if Hashtbl.mem fp_seen h then incr revisits
                  else if !discovered >= max_states then capped := true
                  else begin
                    Hashtbl.replace fp_seen h ();
                    incr states;
                    incr discovered;
                    next := (script @ [ e ]) :: !next
                  end)
                kids)
        results;
      frontier := List.rev !next
    done
  in
  (match backend with Dpor -> run_dpor () | Naive -> run_naive () | Graph -> run_graph ());
  (* ---- assemble the verdict (canonical order everywhere) ---- *)
  let classes =
    List.rev_map
      (fun (((stopped, term, moves, willed) as key), witness) ->
        {
          cls_moves = moves;
          cls_willed = willed;
          cls_termination = term;
          cls_stopped = stopped;
          cls_count = !(Hashtbl.find cls_tbl key);
          cls_witness = witness;
        })
      !cls_order
    |> List.sort (fun a b ->
           compare
             (a.cls_stopped, a.cls_termination, a.cls_moves, a.cls_willed)
             (b.cls_stopped, b.cls_termination, b.cls_moves, b.cls_willed))
  in
  let maximal = List.filter (fun c -> not c.cls_stopped) classes in
  let confluence =
    match maximal with
    | [] -> Explore.Vacuous
    | c :: rest ->
        if List.for_all (fun d -> d.cls_willed = c.cls_willed) rest then
          Explore.Agree
        else Explore.Disagree
  in
  (if require_confluence && confluence = Explore.Disagree && !violation = None
   then
     match maximal with
     | ref_c :: rest ->
         let div = List.find (fun d -> d.cls_willed <> ref_c.cls_willed) rest in
         let rw = Array.copy ref_c.cls_willed in
         violation :=
           Some
             {
               rv_name = "confluence";
               rv_reason = "maximal histories disagree on willed moves";
               rv_check =
                 (fun ~stopped:_ ~willed _o ->
                   if willed <> rw then
                     Some "willed moves differ from the reference history"
                   else None);
               rv_script = div.cls_witness;
               rv_starts = None;
               rv_stopped = false;
               rv_outcome = None;
             }
     | [] -> ());
  (* ---- counterexample minimization: greedy left-to-right single-
     delivery elision to a fixpoint, each candidate confirmed by a guided
     replay still violating the same property ---- *)
  let minimize (rv : _ raw_violation) =
    let try_replay script =
      incr min_replays;
      let xr =
        exec ~sys ~guided:true ~stop_after:rv.rv_stopped ~starts:rv.rv_starts
          ~script ~sleep:[] ~max_steps ~fingerprints:false
      in
      match (xr.x_outcome, xr.x_willed) with
      | Some o, Some w when not xr.x_truncated -> (
          match rv.rv_check ~stopped:rv.rv_stopped ~willed:w o with
          | Some reason -> Some (reason, o)
          | None -> None)
      | _ -> None
    in
    let original = List.length rv.rv_script in
    match try_replay rv.rv_script with
    | None ->
        (* the confirming replay did not reproduce the violation — report
           the raw witness rather than minimize against a moving target *)
        let o =
          match rv.rv_outcome with
          | Some o -> o
          | None ->
              fst
                (replay sys ~script:rv.rv_script ?starts:rv.rv_starts
                   ~stopped:rv.rv_stopped ~max_steps ())
        in
        {
          ce_property = rv.rv_name;
          ce_reason = rv.rv_reason;
          ce_script = rv.rv_script;
          ce_starts = rv.rv_starts;
          ce_stopped = rv.rv_stopped;
          ce_outcome = o;
          ce_original = original;
        }
    | Some (reason0, o0) ->
        let best = ref (rv.rv_script, reason0, o0) in
        let changed = ref true in
        while !changed && !min_replays < max_minimize do
          changed := false;
          let rec pass i =
            let script, _, _ = !best in
            if i < List.length script && !min_replays < max_minimize then begin
              let cand = List.filteri (fun j _ -> j <> i) script in
              match try_replay cand with
              | Some (r, o) ->
                  best := (cand, r, o);
                  changed := true;
                  pass i
              | None -> pass (i + 1)
            end
          in
          pass 0
        done;
        let script, reason, o = !best in
        {
          ce_property = rv.rv_name;
          ce_reason = reason;
          ce_script = script;
          ce_starts = rv.rv_starts;
          ce_stopped = rv.rv_stopped;
          ce_outcome = o;
          ce_original = original;
        }
  in
  let violation = Option.map minimize !violation in
  let stats =
    {
      backend_name =
        (match backend with Dpor -> "dpor" | Naive -> "naive" | Graph -> "graph");
      runs = !runs;
      traces = !traces;
      truncated = !truncated;
      sleep_blocked = !sleep_blocked;
      states = !states;
      revisits = !revisits;
      stop_cuts = !stop_cuts;
      minimize_replays = !min_replays;
      max_frontier = !max_frontier;
      capped = !capped;
    }
  in
  {
    pass = violation = None;
    confluence;
    classes;
    violation;
    deadlocks = Hashtbl.length stuck_seen;
    worst_wait = !worst;
    exhaustive = (not !capped) && !truncated = 0 && not !incomplete;
    stats;
  }

(* ------------------------------------------------------------------ *)

let repr mv (v : 'a verdict) =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "verdict %s confluence=%s exhaustive=%b deadlock-states=%d worst-wait=%d\n"
    (if v.pass then "PASS" else "FAIL")
    (agreement_str v.confluence) v.exhaustive v.deadlocks v.worst_wait;
  List.iter
    (fun c ->
      Printf.bprintf b "class %s term=%s count=%d moves=%s willed=%s\n"
        (if c.cls_stopped then "stopped" else "maximal")
        (term_str c.cls_termination) c.cls_count (arr_str mv c.cls_moves)
        (arr_str mv c.cls_willed))
    v.classes;
  (match v.violation with
  | Some ce ->
      Printf.bprintf b "violation %s: %s\n  script[%d<-%d]%s: %s\n" ce.ce_property
        ce.ce_reason
        (List.length ce.ce_script)
        ce.ce_original
        (match ce.ce_starts with
        | None -> ""
        | Some s -> " starts{" ^ String.concat "," (List.map string_of_int s) ^ "}")
        (script_str ce.ce_script)
  | None -> ());
  let s = v.stats in
  Printf.bprintf b
    "stats backend=%s runs=%d traces=%d truncated=%d sleep-blocked=%d states=%d \
     revisits=%d stop-cuts=%d minimize-replays=%d max-frontier=%d capped=%b\n"
    s.backend_name s.runs s.traces s.truncated s.sleep_blocked s.states s.revisits
    s.stop_cuts s.minimize_replays s.max_frontier s.capped;
  Buffer.contents b

let pp_counterexample ~mv fmt (ce : 'a counterexample) =
  Format.fprintf fmt "property %s violated: %s@." ce.ce_property ce.ce_reason;
  Format.fprintf fmt "minimized to %d deliveries (witness had %d)%s:@."
    (List.length ce.ce_script)
    ce.ce_original
    (match ce.ce_starts with
    | None -> ""
    | Some s ->
        Printf.sprintf " with only {%s} started"
          (String.concat "," (List.map string_of_int s)));
  let shown = 40 in
  List.iteri
    (fun i e -> if i < shown then Format.fprintf fmt "  deliver %a@." pp_entry e)
    ce.ce_script;
  let rest = List.length ce.ce_script - shown in
  if rest > 0 then Format.fprintf fmt "  ... (%d more deliveries)@." rest;
  if ce.ce_stopped then
    Format.fprintf fmt "  (then the environment stops delivery)@.";
  Format.fprintf fmt "final moves: %s@."
    (arr_str mv ce.ce_outcome.Types.moves);
  Format.fprintf fmt "replay trace:@.%s"
    (Trace_pp.chart ~limit:120 ce.ce_outcome)

let findings ~subject (v : 'a verdict) =
  (match v.violation with
  | Some ce ->
      [
        Finding.v ~analyzer ~subject
          (Printf.sprintf
             "property %s violated: %s (counterexample minimized to %d deliveries \
              from %d)"
             ce.ce_property ce.ce_reason
             (List.length ce.ce_script)
             ce.ce_original);
      ]
  | None -> [])
  @ (if v.stats.capped then
       [
         Finding.warning ~analyzer ~subject
           "state budget exhausted; the verdict is not exhaustive";
       ]
     else [])
  @ (if v.stats.truncated > 0 then
       [
         Finding.warning ~analyzer ~subject
           (Printf.sprintf "%d histories truncated by the step bound"
              v.stats.truncated);
       ]
     else [])
  @
  match v.confluence with
  | Explore.Vacuous ->
      [ Finding.warning ~analyzer ~subject "no outcomes explored (vacuous verdict)" ]
  | _ -> []
