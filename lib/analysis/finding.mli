(** Findings reported by the protocol analyzers.

    Every analyzer (race detector, effect-discipline linter, circuit
    linter, threshold validator) reports through this one type so the CLI,
    the test suite and the experiment-harness hook can aggregate, filter
    and print them uniformly. [Error] findings are invariant breaches the
    paper's constructions forbid (they fail `ctmed lint`); [Warning]
    findings are legal-but-suspicious patterns (in-protocol misbehaviour a
    Byzantine player is allowed, dead circuit structure, and so on). *)

type severity = Error | Warning

type t = {
  analyzer : string;  (** "race" | "effects" | "circuit" | "thresholds" *)
  severity : severity;
  subject : string;  (** what the finding is about, e.g. "player 3", "gate g7" *)
  detail : string;
}

val v : ?severity:severity -> analyzer:string -> subject:string -> string -> t
(** [severity] defaults to [Error]. *)

val warning : analyzer:string -> subject:string -> string -> t

val is_error : t -> bool
val errors : t list -> t list
val warnings : t list -> t list

val count : t list -> int * int
(** (errors, warnings). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
