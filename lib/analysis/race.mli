(** Happens-before schedule-race detector.

    The paper's guarantees quantify over {e all} schedulers, so the
    deadliest bug class in this reproduction is silent schedule
    sensitivity: a protocol whose outcome depends on delivery order where
    the theorems say it must not. This analyzer finds such dependence on
    real (large) protocols where {!Sim.Explore}'s exhaustive enumeration
    is infeasible:

    + run the protocol under a family of schedulers, recording the full
      delivery schedule (start signals normalised first — the runner
      activates start before the first receive regardless of schedule, so
      this is behaviour-preserving);
    + compute vector clocks over the run: each activation ticks its
      process's component, each send stamps the sender's clock, each
      delivery joins the message clock into the receiver. Two deliveries
      to the same process are a {e candidate race} when the later
      message's send does not causally depend on the earlier delivery —
      their order was the scheduler's free choice;
    + for every candidate, {e replay} the run with the pair swapped (the
      held delivery waits until the promoted one lands; everything else
      keeps its causal order) and compare: different final moves is an
      {!Outcome_race}; same moves but different effects emitted by the
      receiving process in the two activations is an {!Effect_race}.

    Soundness/completeness caveats: every reported race is real (the two
    runs are both legal executions and they differ), but the detector
    only examines single swaps along observed schedules — races reachable
    only through multi-pair reorderings can be missed, so a clean report
    is evidence, not proof. [Effect_race]s are common and usually benign
    (any threshold-waiting protocol emits its batch from whichever
    activation crosses the threshold); [Outcome_race]s are what the
    theorems forbid. Verdicts are cross-validated against {!Sim.Explore}
    ground truth in the test suite. *)

val analyzer : string

type entry = { e_src : int; e_dst : int; e_seq : int }
(** The seq-th message from src to dst — the paper's (i,j,k). *)

val pp_entry : Format.formatter -> entry -> unit

type candidate = { c_dst : int; c_first : entry; c_second : entry }
(** Two deliveries to [c_dst] whose order was the scheduler's free choice
    (the later message's send does not causally depend on the earlier
    delivery). *)

val candidates_of_outcome : 'a Sim.Types.outcome -> candidate list
(** The candidate races of one observed run, from its trace alone
    (vector-clock happens-before, as used by {!analyze}). Exposed so the
    model checker can cross-validate its independence relation against
    this detector's happens-before relation on shared fixtures: a pair is
    a candidate here iff the two deliveries are dependent-but-reorderable
    there ([Analysis.Mc]'s backtrack condition). *)

type verdict =
  | Outcome_race  (** swapping the pair changes some player's final move *)
  | Effect_race
      (** moves agree, but the receiver's emitted effects differ — benign
          for the theorems, still schedule-dependent behaviour *)

type race = {
  dst : int;  (** the process receiving both messages *)
  first : entry;  (** delivered earlier in the observed schedule *)
  second : entry;
  verdict : verdict;
  scheduler : string;  (** observed schedule that exposed the pair *)
  detail : string;
}

type report = {
  races : race list;
  runs : int;
  candidates : int;
  candidates_skipped : int;  (** dropped by [max_candidates]; never silent *)
  replays : int;
  diverged_replays : int;  (** swaps whose tail left the observed schedule *)
}

val analyze :
  ?schedulers:Sim.Scheduler.t list ->
  ?max_steps:int ->
  ?max_candidates:int ->
  make:(unit -> ('m, 'a) Sim.Types.process array) ->
  unit ->
  report
(** [make] must return freshly-initialised processes on every call (state
    is mutable and every replay restarts from scratch), exactly like
    {!Sim.Explore.explore}. Defaults: a fixed six-scheduler family,
    [max_steps] 20000, [max_candidates] 400 replays. Deterministic. *)

val has_outcome_race : report -> bool
val is_clean : report -> bool

val findings : report -> Finding.t list
(** Outcome races as errors, effect races and coverage caps as warnings. *)
