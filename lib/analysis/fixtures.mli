(** Small demo protocols for the analyzers: each is a [make] function in
    the {!Sim.Explore} sense (fresh processes on every call), small enough
    for exhaustive interleaving so the race detector's verdicts can be
    cross-validated against ground truth. Used by `ctmed lint` and the
    analysis test suite. *)

val ping_pong : unit -> (int, int) Sim.Types.process array
(** Two players, one message each way, both move — confluent. *)

val threshold_sum : unit -> (int, int) Sim.Types.process array
(** Players 0 and 1 send their value to a collector that moves the sum
    once both arrived. Outcome-confluent, but effect-level racy: the
    collector's emission happens in whichever activation crosses the
    threshold (the benign race every quorum protocol exhibits). *)

val order_bug : unit -> (int, int) Sim.Types.process array
(** The deliberate schedule-sensitivity bug: a judge moves the {e first}
    value it receives, so the scheduler picks the outcome. The race
    detector must report an outcome race here and {!Sim.Explore} must
    find non-confluent moves — the seeded-bug fixture of `ctmed lint
    --seeded-bug`. *)

val byzantine_echo : unit -> (int, int) Sim.Types.process array
(** Two honest players exchange their value and move on the honest
    peer's message; player 2 is Byzantine and sends a different lie to
    each. Honest moves are confluent despite the faulty traffic. *)

val quorum_vote : n:int -> zeros:int -> unit -> (int, int) Sim.Types.process array
(** One-shot majority vote, players 0..n-2 honest (vote 1, broadcast),
    player n-1 Byzantine sending [zeros] copies of vote 0 to every honest
    player. An honest player decides the majority of its own vote plus the
    first n-1 received votes. With [n:4 zeros:1] every schedule decides 1
    (validity holds, a clean {!Mc} fixture); with [n:3 zeros:2] the
    environment can deliver both forged zeros first and an honest player
    decides 0 — the below-threshold violation whose minimized
    counterexample is two deliveries. *)

val quorum_validity : int Mc.property
(** Every honest player that decided, decided 1 (evaluated on willed
    moves, so stopped cuts are covered too). *)

val pairs : m:int -> unit -> (int, int) Sim.Types.process array
(** [m] fully independent request/reply pairs — the partial-order
    reduction showcase: no two deliveries share a destination outside
    their causal chain, so DPOR explores exactly one interleaving while
    naive enumeration pays the full product of linear extensions
    (2,217,600 histories at m = 3). *)

val summing : unit -> (int, int) Mc.instance
(** Two senders, one accumulating collector, with the protocol state in
    plain refs so the instance exposes both {!Mc.instance.digest} and
    {!Mc.instance.snapshot} — the [Graph] backend fixture: different
    delivery orders of the commutative sums converge to the same
    fingerprint. *)
