(** Small demo protocols for the analyzers: each is a [make] function in
    the {!Sim.Explore} sense (fresh processes on every call), small enough
    for exhaustive interleaving so the race detector's verdicts can be
    cross-validated against ground truth. Used by `ctmed lint` and the
    analysis test suite. *)

val ping_pong : unit -> (int, int) Sim.Types.process array
(** Two players, one message each way, both move — confluent. *)

val threshold_sum : unit -> (int, int) Sim.Types.process array
(** Players 0 and 1 send their value to a collector that moves the sum
    once both arrived. Outcome-confluent, but effect-level racy: the
    collector's emission happens in whichever activation crosses the
    threshold (the benign race every quorum protocol exhibits). *)

val order_bug : unit -> (int, int) Sim.Types.process array
(** The deliberate schedule-sensitivity bug: a judge moves the {e first}
    value it receives, so the scheduler picks the outcome. The race
    detector must report an outcome race here and {!Sim.Explore} must
    find non-confluent moves — the seeded-bug fixture of `ctmed lint
    --seeded-bug`. *)

val byzantine_echo : unit -> (int, int) Sim.Types.process array
(** Two honest players exchange their value and move on the honest
    peer's message; player 2 is Byzantine and sends a different lie to
    each. Honest moves are confluent despite the faulty traffic. *)
