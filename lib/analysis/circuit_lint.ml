let analyzer = "circuit"

let err ~subject detail = Finding.v ~analyzer ~subject detail
let warn ~subject detail = Finding.warning ~analyzer ~subject detail

let check_raw ~n_inputs ~n_random ~gates ~outputs =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  if n_inputs < 0 then add (err ~subject:"arity" "negative n_inputs");
  if n_random < 0 then add (err ~subject:"arity" "negative n_random");
  let ng = Array.length gates in
  let check_ref pos j =
    if j < 0 || j >= pos then
      add
        (err
           ~subject:(Printf.sprintf "gate g%d" pos)
           (Printf.sprintf
              "references gate g%d, which is not strictly earlier (forward edge or self \
               loop breaks evaluation order)"
              j))
  in
  Array.iteri
    (fun pos g ->
      match (g : Circuit.gate) with
      | Circuit.Input i ->
          if i < 0 || i >= n_inputs then
            add
              (err
                 ~subject:(Printf.sprintf "gate g%d" pos)
                 (Printf.sprintf "input index %d out of range [0,%d)" i n_inputs))
      | Circuit.Random j ->
          if j < 0 || j >= n_random then
            add
              (err
                 ~subject:(Printf.sprintf "gate g%d" pos)
                 (Printf.sprintf "randomness slot %d out of range [0,%d)" j n_random))
      | Circuit.Const _ -> ()
      | Circuit.Add (a, b) | Circuit.Sub (a, b) | Circuit.Mul (a, b) ->
          check_ref pos a;
          check_ref pos b
      | Circuit.Scale (_, a) -> check_ref pos a)
    gates;
  Array.iteri
    (fun i o ->
      if o < 0 || o >= ng then
        add
          (err
             ~subject:(Printf.sprintf "output %d" i)
             (Printf.sprintf "references missing gate g%d (circuit has %d gates)" o ng)))
    outputs;
  List.rev !fs

(* Gates reachable (backwards) from any output. *)
let reachable (c : Circuit.t) =
  let ng = Array.length c.Circuit.gates in
  let seen = Array.make ng false in
  let rec visit j =
    if j >= 0 && j < ng && not seen.(j) then begin
      seen.(j) <- true;
      match c.Circuit.gates.(j) with
      | Circuit.Input _ | Circuit.Random _ | Circuit.Const _ -> ()
      | Circuit.Add (a, b) | Circuit.Sub (a, b) | Circuit.Mul (a, b) ->
          visit a;
          visit b
      | Circuit.Scale (_, a) -> visit a
    end
  in
  Array.iter visit c.Circuit.outputs;
  seen

(* has_input.(pos): does gate pos's cone contain an Input gate? *)
let input_cones (c : Circuit.t) =
  let ng = Array.length c.Circuit.gates in
  let has = Array.make ng false in
  Array.iteri
    (fun pos g ->
      has.(pos) <-
        (match (g : Circuit.gate) with
        | Circuit.Input _ -> true
        | Circuit.Random _ | Circuit.Const _ -> false
        | Circuit.Add (a, b) | Circuit.Sub (a, b) | Circuit.Mul (a, b) -> has.(a) || has.(b)
        | Circuit.Scale (_, a) -> has.(a)))
    c.Circuit.gates;
  has

let check (c : Circuit.t) =
  let structural =
    check_raw ~n_inputs:c.Circuit.n_inputs ~n_random:c.Circuit.n_random
      ~gates:c.Circuit.gates ~outputs:c.Circuit.outputs
  in
  let seen = reachable c in
  let dead = ref [] in
  Array.iteri (fun j live -> if not live then dead := j :: !dead) seen;
  let dead = List.rev !dead in
  let dead_finding =
    match dead with
    | [] -> []
    | j :: _ ->
        [
          warn ~subject:"dead gates"
            (Printf.sprintf "%d of %d gates unreachable from every output (first: g%d)"
               (List.length dead) (Circuit.size c) j);
        ]
  in
  let cones = input_cones c in
  let inputless =
    Array.to_list c.Circuit.outputs
    |> List.mapi (fun i o -> (i, o))
    |> List.filter (fun (_, o) -> not cones.(o))
    |> List.map (fun (i, o) ->
           warn
             ~subject:(Printf.sprintf "output %d" i)
             (Printf.sprintf
                "wire g%d depends on no player input (constant or randomness-only \
                 recommendation)"
                o))
  in
  let used_random = Array.make c.Circuit.n_random false in
  Array.iter
    (fun g -> match (g : Circuit.gate) with Circuit.Random j -> used_random.(j) <- true | _ -> ())
    c.Circuit.gates;
  let unused_random = ref [] in
  Array.iteri
    (fun j used ->
      if not used then
        unused_random :=
          warn
            ~subject:(Printf.sprintf "randomness slot %d" j)
            "no gate reads this slot (dangling mediator coin)"
          :: !unused_random)
    used_random;
  structural @ dead_finding @ inputless @ List.rev !unused_random

let check_stages (c : Circuit.t) ~stages =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let ng = Array.length c.Circuit.gates in
  let n_players = Array.length c.Circuit.outputs in
  let n_stages = Array.length stages in
  if n_stages = 0 then add (err ~subject:"stages" "empty reveal schedule");
  let released : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun s stage ->
      if Array.length stage <> n_players then
        add
          (err
             ~subject:(Printf.sprintf "stage %d" s)
             (Printf.sprintf "reveals %d wires, expected one per player (%d)"
                (Array.length stage) n_players));
      Array.iteri
        (fun i g ->
          if g < 0 || g >= ng then
            add
              (err
                 ~subject:(Printf.sprintf "stage %d, player %d" s i)
                 (Printf.sprintf "references missing gate g%d" g))
          else
            match Hashtbl.find_opt released g with
            | Some s' when s' < s ->
                add
                  (err
                     ~subject:(Printf.sprintf "stage %d, player %d" s i)
                     (Printf.sprintf
                        "staged-reveal ordering: wire g%d already released at stage %d — \
                         a stage-%d share must not be obtainable before stage %d \
                         reconstruction"
                        g s' s (s - 1)))
            | _ -> Hashtbl.replace released g s)
        stage)
    stages;
  if n_stages > 0 then begin
    let last = stages.(n_stages - 1) in
    if last <> c.Circuit.outputs then
      add
        (warn
           ~subject:(Printf.sprintf "stage %d" (n_stages - 1))
           "final stage differs from the circuit's output wires (the recommendation)")
  end;
  List.rev !fs

let check_spec (spec : Mediator.Spec.t) =
  let c = spec.Mediator.Spec.circuit in
  let n = spec.Mediator.Spec.game.Games.Game.n in
  let arity =
    (if c.Circuit.n_inputs <> n then
       [
         err ~subject:"spec arity"
           (Printf.sprintf "circuit has %d inputs but the game has n=%d players"
              c.Circuit.n_inputs n);
       ]
     else [])
    @
    if Array.length c.Circuit.outputs <> n then
      [
        err ~subject:"spec arity"
          (Printf.sprintf "circuit has %d outputs but the game has n=%d players"
             (Array.length c.Circuit.outputs)
             n);
      ]
    else []
  in
  let staged =
    match spec.Mediator.Spec.stages with
    | None -> []
    | Some stages -> check_stages c ~stages
  in
  arity @ check c @ staged
