open Sim

let analyzer = "race"

(* A delivery, identified schedule-independently by its channel position:
   the seq-th message from src to dst (the paper's (i,j,k)). Start signals
   have src = env_pid. *)
type entry = { e_src : int; e_dst : int; e_seq : int }

let entry_is_start e = e.e_src = Types.env_pid

let pp_entry fmt e =
  if entry_is_start e then Format.fprintf fmt "start(%d)" e.e_dst
  else Format.fprintf fmt "(%d->%d #%d)" e.e_src e.e_dst e.e_seq

(* ------------------------------------------------------------------ *)
(* Observation: run under a scheduler, recording the delivery schedule.
   Start signals are always delivered first: the runner activates a
   process's start before its first receive regardless of schedule, so
   this normalisation is behaviour-preserving and keeps every later slot
   a pure receive activation (clean signatures for comparison). *)

let record_scheduler inner log =
  Scheduler.custom
    ~name:("record:" ^ inner.Scheduler.name)
    ~relaxed:false
    (fun ~step ~history ~pending ->
      let pick (v : Types.pending_view) =
        log := { e_src = v.Types.src; e_dst = v.Types.dst; e_seq = v.Types.seq } :: !log;
        Types.Deliver v.Types.id
      in
      match Pending_set.find pending (fun v -> v.Types.src = Types.env_pid) with
      | Some v -> pick v
      | None -> (
          match inner.Scheduler.choose ~step ~history ~pending with
          | Types.Deliver id -> (
              match Pending_set.find pending (fun v -> v.Types.id = id) with
              | Some v -> pick v
              | None -> pick (Pending_set.oldest pending))
          | Types.Stop_delivery -> pick (Pending_set.oldest pending)))

(* Replay: follow [script] in order, delivering the first entry that is
   currently pending — except [hold], which is only eligible once [promote]
   has been delivered. Entries whose message does not exist yet are
   skipped this decision and retried later, so causality re-linearises the
   script around the swap. Off-script deliveries (the reordering changed
   some process's sends) fall back to oldest-first. *)
let replay_scheduler script ~hold ~promote diverged =
  let remaining = ref script in
  let released = ref false in
  Scheduler.custom ~name:"replay" ~relaxed:false (fun ~step:_ ~history:_ ~pending ->
      let rec pick acc = function
        | [] -> None
        | e :: rest ->
            if e = hold && not !released then pick (e :: acc) rest
            else begin
              match
                Pending_set.find pending (fun v ->
                    v.Types.src = e.e_src && v.Types.dst = e.e_dst && v.Types.seq = e.e_seq)
              with
              | Some v ->
                  remaining := List.rev_append acc rest;
                  if e = promote then released := true;
                  Some v
              | None -> pick (e :: acc) rest
            end
      in
      match pick [] !remaining with
      | Some v -> Types.Deliver v.Types.id
      | None ->
          diverged := true;
          Types.Deliver (Pending_set.oldest pending).Types.id)

(* ------------------------------------------------------------------ *)
(* Slots: one per delivery decision, carrying the signature of the
   effects the activated process emitted. Signatures ignore sequence
   numbers (reordering shifts them) but keep destinations, actions and
   halts. *)

type 'a sig_ev = S of int | M of 'a | H

type 'a slot = { trig : entry; mutable rev_sig : 'a sig_ev list }

let slots_of_trace trace =
  let slots = ref [] in
  let cur = ref None in
  let push t =
    let s = { trig = t; rev_sig = [] } in
    slots := s :: !slots;
    cur := Some s
  in
  let emit ev = match !cur with Some s -> s.rev_sig <- ev :: s.rev_sig | None -> () in
  List.iter
    (fun ev ->
      match (ev : 'a Types.trace_event) with
      | Types.Started p -> (
          (* a Started directly after "Delivered to p" with nothing emitted
             yet is the implicit start the runner performs before the first
             receive: same scheduling slot *)
          match !cur with
          | Some { trig; rev_sig = [] } when (not (entry_is_start trig)) && trig.e_dst = p -> ()
          | _ -> push { e_src = Types.env_pid; e_dst = p; e_seq = 1 })
      | Types.Delivered { src; dst; seq } -> push { e_src = src; e_dst = dst; e_seq = seq }
      | Types.Sent { dst; _ } -> emit (S dst)
      | Types.Moved { action; _ } -> emit (M action)
      | Types.Halted _ -> emit H
      | Types.Dropped _ -> ()
      (* injected channel faults are environment action, not an effect of
         the activated process: they carry no ordering signature *)
      | Types.Fault _ -> ())
    trace;
  List.rev !slots

let signature s = List.rev s.rev_sig

let slot_for slots e = List.find_opt (fun s -> s.trig = e) slots

(* ------------------------------------------------------------------ *)
(* Happens-before over one observed schedule. Candidate races: two
   message deliveries to the same process whose order the scheduler chose
   (the later message's send does not causally depend on the earlier
   delivery). Start signals are excluded: the runner orders start before
   every receive semantically, so their position carries no information. *)

type candidate = { c_dst : int; c_first : entry; c_second : entry }

let candidates_of_slots ~n slots =
  let clock = Array.init n (fun _ -> Vclock.zero n) in
  let send_clock : (int * int * int, Vclock.t) Hashtbl.t = Hashtbl.create 64 in
  let seq_out = Array.make_matrix n n 0 in
  (* deliveries.(q): (entry, q's activation count at that delivery), newest first *)
  let deliveries = Array.make n [] in
  List.iter
    (fun s ->
      let e = s.trig in
      let p = e.e_dst in
      if p >= 0 && p < n then begin
        let base =
          if entry_is_start e then clock.(p)
          else begin
            let mc =
              try Hashtbl.find send_clock (e.e_src, e.e_dst, e.e_seq)
              with Not_found -> Vclock.zero n
            in
            Vclock.join clock.(p) mc
          end
        in
        clock.(p) <- Vclock.tick base p;
        if not (entry_is_start e) then
          deliveries.(p) <- (e, Vclock.get clock.(p) p) :: deliveries.(p);
        (* stamp the sends this activation emitted *)
        List.iter
          (function
            | S dst when dst >= 0 && dst < n ->
                seq_out.(p).(dst) <- seq_out.(p).(dst) + 1;
                Hashtbl.replace send_clock (p, dst, seq_out.(p).(dst)) clock.(p)
            | S _ | M _ | H -> ())
          (signature s)
      end)
    slots;
  let cands = ref [] in
  for q = n - 1 downto 0 do
    let ds = List.rev deliveries.(q) in
    (* all ordered pairs (i < j) with send(j) not causally after deliver(i) *)
    let rec pairs = function
      | [] -> ()
      | (e1, c1) :: rest ->
          List.iter
            (fun (e2, _) ->
              let mc2 =
                try Hashtbl.find send_clock (e2.e_src, e2.e_dst, e2.e_seq)
                with Not_found -> Vclock.zero n
              in
              if Vclock.get mc2 q < c1 then
                cands := { c_dst = q; c_first = e1; c_second = e2 } :: !cands)
            rest;
          pairs rest
    in
    pairs ds
  done;
  List.rev !cands

let candidates_of_outcome (o : 'a Types.outcome) =
  let n = Array.length o.Types.moves in
  candidates_of_slots ~n (slots_of_trace o.Types.trace)

(* ------------------------------------------------------------------ *)

type verdict = Outcome_race | Effect_race

type race = {
  dst : int;
  first : entry;
  second : entry;
  verdict : verdict;
  scheduler : string;
  detail : string;
}

type report = {
  races : race list;
  runs : int;
  candidates : int;
  candidates_skipped : int;  (** dropped by [max_candidates]; never silent *)
  replays : int;
  diverged_replays : int;  (** swaps whose tail left the observed schedule *)
}

let has_outcome_race r = List.exists (fun x -> x.verdict = Outcome_race) r.races
let is_clean r = r.races = []

let default_schedulers () =
  [
    Scheduler.fifo ();
    Scheduler.lifo ();
    Scheduler.random (Random.State.make [| 0xACE; 1 |]);
    Scheduler.random (Random.State.make [| 0xACE; 2 |]);
    Scheduler.round_robin ();
    Scheduler.adaptive_laggard (Random.State.make [| 0xACE; 3 |]);
  ]

let run_under ~max_steps ~make sched =
  Runner.run (Runner.config ~max_steps ~starvation_bound:max_int ~scheduler:sched (make ()))

let analyze ?schedulers ?(max_steps = 20_000) ?(max_candidates = 400) ~make () =
  let schedulers = match schedulers with Some s -> s | None -> default_schedulers () in
  let seen : (int * entry * entry, unit) Hashtbl.t = Hashtbl.create 64 in
  let races = ref [] in
  let runs = ref 0 in
  let candidates = ref 0 in
  let skipped = ref 0 in
  let replays = ref 0 in
  let diverged_replays = ref 0 in
  List.iter
    (fun sched ->
      let log = ref [] in
      let o = run_under ~max_steps ~make (record_scheduler sched log) in
      incr runs;
      let schedule = List.rev !log in
      let n = Array.length o.Types.moves in
      let slots = slots_of_trace o.Types.trace in
      List.iter
        (fun { c_dst; c_first; c_second } ->
          let key = (c_dst, c_first, c_second) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            incr candidates;
            if !replays >= max_candidates then incr skipped
            else begin
              incr replays;
              let diverged = ref false in
              let sched' = replay_scheduler schedule ~hold:c_first ~promote:c_second diverged in
              let o' = run_under ~max_steps ~make sched' in
              if !diverged then incr diverged_replays;
              let slots' = slots_of_trace o'.Types.trace in
              let verdict =
                if o.Types.moves <> o'.Types.moves then
                  Some
                    ( Outcome_race,
                      Format.asprintf "delivering %a before %a changes the final moves"
                        pp_entry c_second pp_entry c_first )
                else begin
                  let differs e =
                    match (slot_for slots e, slot_for slots' e) with
                    | Some a, Some b -> signature a <> signature b
                    | Some _, None | None, Some _ -> true
                    | None, None -> false
                  in
                  if differs c_first || differs c_second then
                    Some
                      ( Effect_race,
                        Format.asprintf
                          "delivering %a before %a changes player %d's emitted effects \
                           (final moves agree)"
                          pp_entry c_second pp_entry c_first c_dst )
                  else None
                end
              in
              match verdict with
              | None -> ()
              | Some (verdict, detail) ->
                  races :=
                    {
                      dst = c_dst;
                      first = c_first;
                      second = c_second;
                      verdict;
                      scheduler = sched.Scheduler.name;
                      detail;
                    }
                    :: !races
            end
          end)
        (candidates_of_slots ~n slots))
    schedulers;
  {
    races = List.rev !races;
    runs = !runs;
    candidates = !candidates;
    candidates_skipped = !skipped;
    replays = !replays;
    diverged_replays = !diverged_replays;
  }

let findings report =
  List.map
    (fun r ->
      let subject = Printf.sprintf "player %d" r.dst in
      let detail = Printf.sprintf "%s [under %s]" r.detail r.scheduler in
      match r.verdict with
      | Outcome_race -> Finding.v ~analyzer ~subject detail
      | Effect_race -> Finding.warning ~analyzer ~subject detail)
    report.races
  @
  if report.candidates_skipped > 0 then
    [
      Finding.warning ~analyzer ~subject:"coverage"
        (Printf.sprintf "%d candidate pairs not replayed (max_candidates cap)"
           report.candidates_skipped);
    ]
  else []
