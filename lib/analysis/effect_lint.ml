open Sim.Types

let analyzer = "effects"

let err ~subject detail = Finding.v ~analyzer ~subject detail
let warn ~subject detail = Finding.warning ~analyzer ~subject detail

type pstate = { mutable halted : bool; mutable moved : bool }

type t = {
  n : int;
  states : pstate array;
  mutable rev_findings : Finding.t list;
}

let create ~n =
  { n; states = Array.init n (fun _ -> { halted = false; moved = false }); rev_findings = [] }

let record t f = t.rev_findings <- f :: t.rev_findings
let findings t = List.rev t.rev_findings

let observe t pid ~ctx effects =
  let subject = Printf.sprintf "pid %d (%s)" pid ctx in
  let st = t.states.(pid) in
  List.iter
    (fun eff ->
      match eff with
      | Send (dst, _) ->
          if st.halted then record t (err ~subject "Send after Halt in the same activation stream")
          else if dst < 0 || dst >= t.n then
            record t
              (err ~subject (Printf.sprintf "send to out-of-range pid %d (valid: 0..%d)" dst (t.n - 1)))
          else if t.states.(dst).halted then
            record t
              (warn ~subject (Printf.sprintf "send to already-halted pid %d (will never be processed)" dst))
      | Move _ ->
          if st.halted then record t (err ~subject "Move after Halt")
          else if st.moved then
            record t (err ~subject "duplicate Move (at most one action in the underlying game)")
          else st.moved <- true
      | Halt ->
          if st.halted then record t (warn ~subject "duplicate Halt")
          else st.halted <- true)
    effects

let wrap t ~pid (p : ('m, 'a) process) =
  {
    start =
      (fun () ->
        let effs = p.start () in
        observe t pid ~ctx:"start" effs;
        effs);
    receive =
      (fun ~src m ->
        if t.states.(pid).halted then
          record t (err ~subject:(Printf.sprintf "pid %d" pid) "activation after Halt");
        let effs = p.receive ~src m in
        observe t pid ~ctx:(Printf.sprintf "receive from %d" src) effs;
        effs);
    will = p.will;
  }

let wrap_all t procs = Array.mapi (fun pid p -> wrap t ~pid p) procs

let check_wills t procs =
  Array.iteri
    (fun pid (p : ('m, 'a) process) ->
      if pid < t.n && t.states.(pid).moved then
        match p.will () with
        | Some _ ->
            record t
              (warn
                 ~subject:(Printf.sprintf "pid %d" pid)
                 "will() still returns an action after the player moved (the executor \
                  ignores it; return None once moved)")
        | None -> ())
    procs

let check_trace ?n (o : 'a outcome) =
  let n = match n with Some n -> n | None -> Array.length o.moves in
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let halted = Array.make n false in
  let moved = Array.make n false in
  let started = Array.make n false in
  let next_seq : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let in_flight : (int * int * int, [ `Sent | `Delivered | `Dropped ]) Hashtbl.t =
    Hashtbl.create 32
  in
  let pid_ok p = p >= 0 && p < n in
  let chan ~src ~dst ~seq = Printf.sprintf "(%d->%d #%d)" src dst seq in
  List.iter
    (fun ev ->
      match ev with
      | Sent { src; dst; seq } ->
          let subject = chan ~src ~dst ~seq in
          if not (pid_ok src) then add (err ~subject "sender pid out of range")
          else begin
            if halted.(src) then add (err ~subject "message sent after the sender halted");
            let expected = 1 + (try Hashtbl.find next_seq (src, dst) with Not_found -> 0) in
            if seq <> expected then
              add
                (err ~subject
                   (Printf.sprintf "non-monotone seq: expected %d on this channel" expected));
            Hashtbl.replace next_seq (src, dst) (max seq expected)
          end;
          if pid_ok dst && halted.(dst) then
            add (warn ~subject "sent to an already-halted player");
          Hashtbl.replace in_flight (src, dst, seq) `Sent
      | Delivered { src; dst; seq } -> (
          let subject = chan ~src ~dst ~seq in
          match Hashtbl.find_opt in_flight (src, dst, seq) with
          | Some `Sent -> Hashtbl.replace in_flight (src, dst, seq) `Delivered
          | Some `Delivered -> add (err ~subject "delivered twice")
          | Some `Dropped -> add (err ~subject "delivered after being dropped")
          | None -> add (err ~subject "delivered but never sent"))
      | Dropped { src; dst; seq } -> (
          let subject = chan ~src ~dst ~seq in
          match Hashtbl.find_opt in_flight (src, dst, seq) with
          | Some `Sent -> Hashtbl.replace in_flight (src, dst, seq) `Dropped
          | Some `Delivered -> add (err ~subject "dropped after delivery")
          | Some `Dropped -> add (err ~subject "dropped twice")
          | None -> add (err ~subject "dropped but never sent"))
      | Moved { who; _ } ->
          let subject = Printf.sprintf "pid %d" who in
          if not (pid_ok who) then add (err ~subject "mover pid out of range")
          else begin
            if halted.(who) then add (err ~subject "moved after halting");
            if moved.(who) then add (err ~subject "moved twice") else moved.(who) <- true
          end
      | Halted p ->
          let subject = Printf.sprintf "pid %d" p in
          if not (pid_ok p) then add (err ~subject "halted pid out of range")
          else if halted.(p) then add (err ~subject "halted twice")
          else halted.(p) <- true
      | Started p ->
          let subject = Printf.sprintf "pid %d" p in
          if not (pid_ok p) then add (err ~subject "started pid out of range")
          else if started.(p) then add (err ~subject "started twice")
          else started.(p) <- true
      | Fault { kind = Duplicate; src; dst; seq } ->
          (* an injected duplicate is the environment's copy of a real
             message: it plays the copy's [Sent] role (consumes the
             channel's next seq, may later be delivered or dropped) but
             the sender did not act, so the halted-sender and
             monotonicity checks do not apply *)
          let expected = 1 + (try Hashtbl.find next_seq (src, dst) with Not_found -> 0) in
          Hashtbl.replace next_seq (src, dst) (max seq expected);
          Hashtbl.replace in_flight (src, dst, seq) `Sent
      | Fault _ ->
          (* Corrupt/Delay/Crash_restart markers are informational: the
             affected message's own Sent/Delivered events carry the
             channel bookkeeping *)
          ())
    o.trace;
  List.rev !fs
