(** Vector clocks over process ids 0..n-1 — the happens-before partial
    order of one observed run, used by {!Race} to decide which pairs of
    deliveries were concurrent (i.e. ordered by the scheduler rather than
    by causality). Purely functional: every operation returns a fresh
    clock. *)

type t

val zero : int -> t
(** [zero n]: the bottom clock over n components. *)

val tick : t -> int -> t
(** Advance component [p] by one (one activation of process p). *)

val join : t -> t -> t
(** Pointwise max — what a delivery does to the receiver's clock. *)

val get : t -> int -> int

val leq : t -> t -> bool
(** Pointwise <=: happens-before (or equal). *)

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val pp : Format.formatter -> t -> unit
