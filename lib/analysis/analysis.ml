(** Protocol analysis layer: static analysis and race detection over
    protocols, runs and circuits.

    Four analyzers (see each module's documentation for the exact checks
    and their soundness/completeness caveats):

    - {!Race} — happens-before schedule-race detection over simulator runs
      (vector clocks + swap replay), cross-validated against
      {!Sim.Explore} ground truth on small instances;
    - {!Effect_lint} — effect-discipline linting of traces and process
      wrappers (duplicate moves, sends after halt, non-monotone seq, ...);
    - {!Circuit_lint} — static circuit and staged-reveal linting;
    - {!Thresholds} — the centralised n > 4k+4t / 3k+3t / 3k+4t / 2k+3t
      parameter validator shared with {!Cheaptalk.Compile};
    - {!Mc} — the stateful model checker: dynamic partial-order reduction
      with sleep sets over {!Sim.Runner.Step}, state fingerprinting,
      deadlock/starvation verdicts and minimized counterexample traces,
      with {!Sim.Explore} as its naive reference backend.

    Everything reports through {!Finding}. The CLI front end is
    `ctmed lint`; {!check_run} is the per-run hook the experiment harness
    enables via [Cheaptalk.Verify]'s [?check_runs] parameters. *)

module Finding = Finding
module Vclock = Vclock
module Thresholds = Thresholds
module Circuit_lint = Circuit_lint
module Effect_lint = Effect_lint
module Race = Race
module Mc = Mc
module Fixtures = Fixtures

let check_run ?n (o : 'a Sim.Types.outcome) = Effect_lint.check_trace ?n o
