type severity = Error | Warning

type t = {
  analyzer : string;
  severity : severity;
  subject : string;
  detail : string;
}

let v ?(severity = Error) ~analyzer ~subject detail = { analyzer; severity; subject; detail }
let warning ~analyzer ~subject detail = v ~severity:Warning ~analyzer ~subject detail
let is_error f = f.severity = Error
let errors fs = List.filter is_error fs
let warnings fs = List.filter (fun f -> not (is_error f)) fs

let count fs =
  List.fold_left
    (fun (e, w) f -> if is_error f then (e + 1, w) else (e, w + 1))
    (0, 0) fs

let severity_label = function Error -> "error" | Warning -> "warning"

let pp fmt f =
  Format.fprintf fmt "%s [%s] %s: %s" (severity_label f.severity) f.analyzer f.subject
    f.detail

let to_string f = Format.asprintf "%a" pp f
