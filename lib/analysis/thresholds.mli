(** Centralised threshold / parameter validation for the four upper-bound
    theorems.

    Every precondition the compiler and the MPC substrate rely on lives
    here, once: the n > 4k+4t / 3k+3t / 3k+4t / 2k+3t player bounds, the
    punishment-profile requirements of Theorems 4.4/4.5, and the sharing
    arities of the substrate (quorum intersection n > 3f, reconstruction
    n >= d + 2f + 1, degree reduction n >= 2d + f + 1 when the circuit
    multiplies). {!validate} is the strict gate {!Cheaptalk.Compile.plan}
    uses (first violated precondition, as an error message); {!diagnose}
    reports {e every} violated precondition as a finding with the exact
    numbers, for `ctmed lint`. *)

type theorem = T41 | T42 | T44 | T45

val all : theorem list
val name : theorem -> string
val pp : Format.formatter -> theorem -> unit

val required_n : theorem -> k:int -> t:int -> int
(** The smallest n the theorem's bound admits (bound + 1). *)

val ok : theorem -> n:int -> k:int -> t:int -> bool

val needs_punishment : theorem -> bool
(** True for 4.4/4.5 (the AH wills carry an m-punishment). *)

val punishment_size : theorem -> k:int -> t:int -> int option
(** The m of the m-punishment the theorem requires: k+t for 4.4,
    2k+2t for 4.5, none for 4.1/4.2. *)

val degree : k:int -> t:int -> int
(** MPC sharing degree, k+t in all four theorems. *)

val faults : theorem -> k:int -> t:int -> int
(** Active-fault budget the quorums absorb: k+t for 4.1/4.2, t for
    4.4/4.5. *)

type instance = {
  theorem : theorem;
  n : int;
  k : int;
  t : int;
  has_punishment : bool;  (** the spec carries a punishment profile *)
  multiplies : bool;  (** the mediator circuit has multiplication gates *)
}

val check_sharing :
  n:int -> degree:int -> faults:int -> multiplies:bool -> Finding.t list
(** Just the substrate arity preconditions, for arbitrary (d, f) — used to
    lint sharing parameters independently of a theorem (e.g. a degree
    bumped past k+t). *)

val diagnose : instance -> Finding.t list
(** Every violated precondition, each with a precise diagnostic. Empty
    exactly when {!validate} returns [Ok]. *)

val validate : instance -> (unit, string) result
(** First violated precondition in the order {!Cheaptalk.Compile.plan}
    historically checked them (the error strings are part of the CLI
    surface). *)
