(** Static linter over arithmetic circuits and staged-reveal schedules.

    {!Circuit.create} already rejects structurally ill-formed circuits by
    raising; {!check_raw} re-implements those checks over raw gate arrays
    as findings (so property tests can feed it deliberately broken
    mutants), and {!check} adds the semantic warnings only a whole-circuit
    pass can see: gates unreachable from every output, outputs whose cone
    contains no player input (constant/randomness-only recommendations),
    and randomness slots no gate reads.

    Soundness: every [Error] is a real structural violation ({!Circuit.create}
    would raise on it). Completeness caveat: the warnings are structural,
    not semantic — an output that {e syntactically} depends on an input
    may still be constant as a polynomial. *)

val analyzer : string

val check_raw :
  n_inputs:int ->
  n_random:int ->
  gates:Circuit.gate array ->
  outputs:int array ->
  Finding.t list
(** Structural errors over a raw gate array: negative arity, gate
    references that are not strictly earlier (forward edges, self loops),
    input/randomness indices out of range, outputs referencing missing
    gates. Mirrors the {!Circuit.create} validation, as findings. *)

val check : Circuit.t -> Finding.t list
(** {!check_raw} (vacuously clean on a constructed circuit) plus the
    semantic warnings: unreachable gates, input-free outputs, unused
    randomness slots. *)

val check_stages : Circuit.t -> stages:int array array -> Finding.t list
(** Staged-reveal schedule checks: every stage reveals exactly one wire
    per player, wires exist, and no wire is released at two stages — a
    stage-s value appearing at an earlier stage s' < s is exactly the
    "share released before stage s-1 reconstruction" ordering violation
    (the recipient could reconstruct stage s before the protocol reaches
    it). Warns when the final stage differs from the circuit's output
    wires (the recommendation). *)

val check_spec : Mediator.Spec.t -> Finding.t list
(** Lint a mediator spec: circuit arity against the game (n inputs, n
    outputs), {!check} on the circuit, {!check_stages} when the spec is
    staged. *)
