open Sim.Types

let no_will () = None

let ping_pong () =
  let p0 =
    {
      start = (fun () -> [ Send (1, 1) ]);
      receive = (fun ~src:_ _ -> [ Move 1; Halt ]);
      will = no_will;
    }
  in
  let p1 =
    {
      start = (fun () -> []);
      receive = (fun ~src:_ v -> [ Send (0, v + 1); Move 0; Halt ]);
      will = no_will;
    }
  in
  [| p0; p1 |]

let threshold_sum () =
  let sender me v =
    { start = (fun () -> [ Send (2, v + me) ]); receive = (fun ~src:_ _ -> []); will = no_will }
  in
  let acc = ref 0 in
  let got = ref 0 in
  let collector =
    {
      start = (fun () -> []);
      receive =
        (fun ~src:_ v ->
          acc := !acc + v;
          incr got;
          if !got = 2 then [ Move !acc; Halt ] else []);
      will = no_will;
    }
  in
  [| sender 0 10; sender 1 20; collector |]

let order_bug () =
  let shout me v =
    { start = (fun () -> [ Send (2, v + me) ]); receive = (fun ~src:_ _ -> []); will = no_will }
  in
  let judge =
    {
      start = (fun () -> []);
      receive = (fun ~src:_ v -> [ Move v; Halt ]) (* first arrival wins: the bug *);
      will = no_will;
    }
  in
  [| shout 0 10; shout 1 20; judge |]

let byzantine_echo () =
  let honest peer =
    {
      start = (fun () -> [ Send (peer, 7) ]);
      receive = (fun ~src v -> if src = peer then [ Move v; Halt ] else []);
      will = no_will;
    }
  in
  let byzantine =
    {
      start = (fun () -> [ Send (0, 100); Send (1, 200) ]);
      receive = (fun ~src:_ _ -> []);
      will = no_will;
    }
  in
  [| honest 1; honest 0; byzantine |]
