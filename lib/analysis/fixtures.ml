open Sim.Types

let no_will () = None

let ping_pong () =
  let p0 =
    {
      start = (fun () -> [ Send (1, 1) ]);
      receive = (fun ~src:_ _ -> [ Move 1; Halt ]);
      will = no_will;
    }
  in
  let p1 =
    {
      start = (fun () -> []);
      receive = (fun ~src:_ v -> [ Send (0, v + 1); Move 0; Halt ]);
      will = no_will;
    }
  in
  [| p0; p1 |]

let threshold_sum () =
  let sender me v =
    { start = (fun () -> [ Send (2, v + me) ]); receive = (fun ~src:_ _ -> []); will = no_will }
  in
  let acc = ref 0 in
  let got = ref 0 in
  let collector =
    {
      start = (fun () -> []);
      receive =
        (fun ~src:_ v ->
          acc := !acc + v;
          incr got;
          if !got = 2 then [ Move !acc; Halt ] else []);
      will = no_will;
    }
  in
  [| sender 0 10; sender 1 20; collector |]

let order_bug () =
  let shout me v =
    { start = (fun () -> [ Send (2, v + me) ]); receive = (fun ~src:_ _ -> []); will = no_will }
  in
  let judge =
    {
      start = (fun () -> []);
      receive = (fun ~src:_ v -> [ Move v; Halt ]) (* first arrival wins: the bug *);
      will = no_will;
    }
  in
  [| shout 0 10; shout 1 20; judge |]

let byzantine_echo () =
  let honest peer =
    {
      start = (fun () -> [ Send (peer, 7) ]);
      receive = (fun ~src v -> if src = peer then [ Move v; Halt ] else []);
      will = no_will;
    }
  in
  let byzantine =
    {
      start = (fun () -> [ Send (0, 100); Send (1, 200) ]);
      receive = (fun ~src:_ _ -> []);
      will = no_will;
    }
  in
  [| honest 1; honest 0; byzantine |]

(* ------------------------------------------------------------------ *)
(* Model-checker fixtures (see Mc). *)

let quorum_vote ~n ~zeros () =
  let byz = n - 1 in
  let honest me =
    let ones = ref 1 (* own vote *) in
    let zeros_got = ref 0 in
    let got = ref 0 in
    {
      start =
        (fun () ->
          List.filter_map
            (fun j -> if j = me then None else Some (Send (j, 1)))
            (List.init n (fun j -> j)));
      receive =
        (fun ~src:_ v ->
          incr got;
          if v = 1 then incr ones else incr zeros_got;
          if !got = n - 1 then
            [ Move (if !ones > !zeros_got then 1 else 0); Halt ]
          else []);
      will = no_will;
    }
  in
  let byzantine =
    {
      start =
        (fun () ->
          List.concat_map
            (fun j -> List.init zeros (fun _ -> Send (j, 0)))
            (List.init (n - 1) (fun j -> j)));
      receive = (fun ~src:_ _ -> []);
      will = no_will;
    }
  in
  Array.init n (fun i -> if i = byz then byzantine else honest i)

let quorum_validity : int Mc.property =
  Mc.property "validity" (fun ~stopped:_ ~willed (o : int outcome) ->
      let n = Array.length o.moves in
      let bad = ref None in
      Array.iteri
        (fun pid w -> if pid < n - 1 && w = Some 0 then bad := Some pid)
        willed;
      match !bad with
      | Some pid ->
          Some
            (Printf.sprintf "honest player %d decided 0 though every honest vote was 1"
               pid)
      | None -> None)

let pairs ~m () =
  let pair p =
    let a = 2 * p and b = (2 * p) + 1 in
    let pa =
      {
        start = (fun () -> [ Send (b, (10 * p) + 1) ]);
        receive = (fun ~src:_ v -> [ Move v; Halt ]);
        will = no_will;
      }
    in
    let pb =
      {
        start = (fun () -> []);
        receive = (fun ~src:_ v -> [ Send (a, v + 1); Move v; Halt ]);
        will = no_will;
      }
    in
    [ pa; pb ]
  in
  Array.of_list (List.concat_map pair (List.init m (fun p -> p)))

let summing () =
  let rec make acc0 got0 =
    let acc = ref acc0 and got = ref got0 in
    let sender me =
      {
        start = (fun () -> [ Send (2, me + 1); Send (2, me + 10) ]);
        receive = (fun ~src:_ _ -> []);
        will = no_will;
      }
    in
    let collector =
      {
        start = (fun () -> []);
        receive =
          (fun ~src:_ v ->
            acc := !acc + v;
            incr got;
            if !got = 4 then [ Move !acc; Halt ] else []);
        will = no_will;
      }
    in
    {
      Mc.processes = [| sender 0; sender 1; collector |];
      digest = Some (fun () -> (!acc * 31) + !got);
      snapshot = Some (fun () -> make !acc !got);
    }
  in
  make 0 0
