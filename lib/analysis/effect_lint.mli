(** Effect-discipline linter: checks that processes respect the one-shot
    game semantics of {!Sim.Types.effect} — at most one [Move], nothing
    after [Halt], sends stay in range, sequence numbers stay monotone,
    wills are only meaningful before the player moved.

    Two entry points:

    - {!wrap_all} instruments a process array {e before} a run: the
      wrappers observe every effect list a process emits (including
      effects the runner would silently normalise away, like a duplicate
      [Move] or a send to an out-of-range pid) and record findings into a
      collector. This is the only way to see wrapper-level misbehaviour —
      the runner's trace only shows what survived.
    - {!check_trace} lints a finished run's trace: send-after-halt,
      moves/halts of already-halted players, non-monotone per-channel
      sequence numbers, deliveries of never-sent messages.

    Severity: breaches the runner semantics forbid are [Error]s;
    in-protocol misbehaviour a Byzantine player is allowed (sending to an
    already-halted player, duplicate [Halt]) are [Warning]s. *)

val analyzer : string

type t
(** A findings collector shared by the wrappers of one run. *)

val create : n:int -> t
(** [n] is the number of processes (valid destinations are 0..n-1). *)

val wrap : t -> pid:int -> ('m, 'a) Sim.Types.process -> ('m, 'a) Sim.Types.process
(** Pass-through observer: forwards start/receive/will unchanged while
    recording discipline violations against the shadow state. *)

val wrap_all : t -> ('m, 'a) Sim.Types.process array -> ('m, 'a) Sim.Types.process array

val check_wills : t -> ('m, 'a) Sim.Types.process array -> unit
(** Call after the run: flags wills that still return an action for a
    player that already moved (the executor would ignore it; returning it
    is a latent protocol bug). Recorded as warnings. *)

val findings : t -> Finding.t list
(** Everything recorded so far, in order. *)

val check_trace : ?n:int -> 'a Sim.Types.outcome -> Finding.t list
(** Static lint of a finished run's trace. [n] defaults to the outcome's
    process count. *)
