type theorem = T41 | T42 | T44 | T45

let all = [ T41; T42; T44; T45 ]

let name = function
  | T41 -> "Theorem 4.1"
  | T42 -> "Theorem 4.2"
  | T44 -> "Theorem 4.4"
  | T45 -> "Theorem 4.5"

let pp fmt th = Format.pp_print_string fmt (name th)

let required_n th ~k ~t =
  match th with
  | T41 -> (4 * k) + (4 * t) + 1
  | T42 -> (3 * k) + (3 * t) + 1
  | T44 -> (3 * k) + (4 * t) + 1
  | T45 -> (2 * k) + (3 * t) + 1

let ok th ~n ~k ~t = n >= required_n th ~k ~t
let needs_punishment = function T44 | T45 -> true | T41 | T42 -> false

let punishment_size th ~k ~t =
  match th with
  | T44 -> Some (k + t)
  | T45 -> Some ((2 * k) + (2 * t))
  | T41 | T42 -> None

let degree ~k ~t = k + t
let faults th ~k ~t = match th with T41 | T42 -> k + t | T44 | T45 -> t

type instance = {
  theorem : theorem;
  n : int;
  k : int;
  t : int;
  has_punishment : bool;
  multiplies : bool;
}

let analyzer = "thresholds"

let check_sharing ~n ~degree ~faults ~multiplies =
  let f ~subject detail = Finding.v ~analyzer ~subject detail in
  let quorum =
    if n <= 3 * faults then
      [
        f ~subject:"quorum intersection"
          (Printf.sprintf
             "n > 3*faults violated: n=%d, faults=%d — any two (n-f)-quorums must \
              intersect in > f honest players, needs n >= %d"
             n faults ((3 * faults) + 1));
      ]
    else []
  in
  let reconstruct =
    if n < degree + (2 * faults) + 1 then
      [
        f ~subject:"robust reconstruction"
          (Printf.sprintf
             "n >= degree + 2*faults + 1 violated: n=%d, degree=%d, faults=%d — \
              Reed-Solomon decoding with f corruptions needs n >= %d"
             n degree faults
             (degree + (2 * faults) + 1));
      ]
    else []
  in
  let reduce =
    if multiplies && n < (2 * degree) + faults + 1 then
      [
        f ~subject:"degree reduction"
          (Printf.sprintf
             "n >= 2*degree + faults + 1 violated: n=%d, degree=%d, faults=%d — \
              multiplication doubles the sharing degree, reduction needs n >= %d"
             n degree faults
             ((2 * degree) + faults + 1));
      ]
    else []
  in
  quorum @ reconstruct @ reduce

let diagnose inst =
  let { theorem; n; k; t; has_punishment; multiplies } = inst in
  let f ~subject detail = Finding.v ~analyzer ~subject detail in
  if k < 0 || t < 0 then
    [ f ~subject:"deviation budget" (Printf.sprintf "k=%d t=%d: k and t must be non-negative" k t) ]
  else begin
    let threshold =
      if not (ok theorem ~n ~k ~t) then
        [
          f ~subject:"player bound"
            (Printf.sprintf "%s needs n >= %d for k=%d t=%d, but n=%d" (name theorem)
               (required_n theorem ~k ~t)
               k t n);
        ]
      else []
    in
    let punishment =
      if needs_punishment theorem && not has_punishment then
        [
          f ~subject:"punishment profile"
            (Printf.sprintf "%s requires a %d-punishment profile in the spec (carried by the AH wills)"
               (name theorem)
               (Option.value ~default:0 (punishment_size theorem ~k ~t)));
        ]
      else []
    in
    threshold @ punishment
    @ check_sharing ~n ~degree:(degree ~k ~t) ~faults:(faults theorem ~k ~t) ~multiplies
  end

let validate inst =
  let { theorem; n; k; t; has_punishment; multiplies } = inst in
  if k < 0 || t < 0 then Error "k and t must be non-negative"
  else if not (ok theorem ~n ~k ~t) then
    Error
      (Printf.sprintf "%s needs n >= %d for k=%d t=%d, but the game has n=%d" (name theorem)
         (required_n theorem ~k ~t)
         k t n)
  else if needs_punishment theorem && not has_punishment then
    Error (name theorem ^ " requires a punishment profile in the spec")
  else begin
    let d = degree ~k ~t and f = faults theorem ~k ~t in
    if n <= 3 * f then Error "substrate: n > 3*faults violated"
    else if n < d + (2 * f) + 1 then Error "substrate: n >= degree + 2*faults + 1 violated"
    else if multiplies && n < (2 * d) + f + 1 then
      Error "substrate: n >= 2*degree + faults + 1 violated (circuit multiplies)"
    else Ok ()
  end
