type t = int array

let zero n = Array.make n 0

let tick v p =
  let w = Array.copy v in
  w.(p) <- w.(p) + 1;
  w

let join a b = Array.init (Array.length a) (fun i -> max a.(i) b.(i))
let get v p = v.(p)

let leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let concurrent a b = (not (leq a b)) && not (leq b a)

let pp fmt v =
  Format.fprintf fmt "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int v)))
