(** Streaming, file-backed trace store (DESIGN.md section 16).

    Layout: an 8-byte header (["CTST"], format version, reserved), then
    length-prefixed records:

    {v [u32 LE: len] [u8 tag + payload, len bytes] [u32 LE: CRC-32] v}

    The checksum covers the tag+payload bytes. Record 0 is always the
    run's JSON metadata (enough to rebuild the config for replay);
    after it come {!Wire}-encoded journal entries, trace events and
    metrics in any interleaving — a journaled run streams entries as
    decisions are made and appends the trace and final metrics at the
    end, so a 10^8-event run never exists as an in-memory list.

    {!Reader.open_} validates every record (length sanity + CRC) in one
    sequential scan, building a sparse in-memory index (one offset per
    {!index_every} records) for random access. A torn or corrupt tail —
    the SIGKILL-mid-write case — is detected by the scan and recovered
    by truncating the file back to the last valid record; only an
    unusable header or a destroyed metadata record is unrecoverable
    ({!Corrupt}). *)

exception Corrupt of string
(** The store cannot be used at all: bad magic/version, or record 0
    (the run metadata) is missing or damaged. Partial damage past
    record 0 never raises — it recovers. *)

val index_every : int
(** Sparse-index stride (256): [get] seeks to the nearest indexed
    offset and scans forward at most this many records. *)

(** What a reopened store had to do to present a valid prefix. *)
type recovery =
  | Clean
  | Recovered of { valid_records : int; dropped_bytes : int }
      (** [dropped_bytes] of torn/corrupt tail were truncated away,
          leaving [valid_records] records. *)

type record =
  | Meta of Obs.Json.t
  | Event of int Sim.Types.trace_event
  | Entry of Sim.Runner.Journal.entry
  | Metrics of Obs.Metrics.t
  | Raw of int * string
      (** unknown tag: preserved, not understood (forward compat) *)

module Writer : sig
  type t

  val create : path:string -> meta:Obs.Json.t -> t
  (** Truncates [path] and writes the header plus the metadata record.
      @raise Sys_error on I/O failure. *)

  val append : t -> record -> unit
  val event : t -> int Sim.Types.trace_event -> unit
  val entry : t -> Sim.Runner.Journal.entry -> unit
  val metrics : t -> Obs.Metrics.t -> unit

  val records : t -> int
  (** Records written so far, metadata record included. *)

  val flush : t -> unit
  val close : t -> unit
end

module Reader : sig
  type t

  val open_ : string -> t * recovery
  (** Validate the whole file, truncate away any torn tail, and build
      the sparse index.
      @raise Corrupt when the header or metadata record is unusable.
      @raise Sys_error on I/O failure. *)

  val meta : t -> Obs.Json.t
  val records : t -> int

  val get : t -> int -> record
  (** Random access via the sparse index.
      @raise Invalid_argument when out of range. *)

  val iter : ?from:int -> (int -> record -> unit) -> t -> unit
  (** Stream records [from..] (default 0) in order without keeping more
      than one payload in memory. *)

  val entries : t -> Sim.Runner.Journal.entry array
  (** All journal entries, in order — the input to
      {!Sim.Runner.replay}/{!Sim.Runner.resume}. *)

  val events : t -> int Sim.Types.trace_event list
  (** All trace events, in order. *)

  val metrics : t -> Obs.Metrics.t option
  (** The last metrics record, if the run got far enough to write one. *)

  val close : t -> unit
end

val write_json_atomic : path:string -> Obs.Json.t -> unit
(** Write-to-temp-then-rename, so a checkpoint file is either the old
    complete document or the new complete document — never a torn one.
    Used by the engine's shard checkpoints. *)
