exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
let magic = "CTST"
let index_every = 256

(* A length prefix claiming more than this is garbage bytes being read
   as a length, not a real record: treat it as a torn tail. *)
let max_record_len = 256 * 1024 * 1024

type recovery = Clean | Recovered of { valid_records : int; dropped_bytes : int }

type record =
  | Meta of Obs.Json.t
  | Event of int Sim.Types.trace_event
  | Entry of Sim.Runner.Journal.entry
  | Metrics of Obs.Metrics.t
  | Raw of int * string

(* Record tags (first payload byte). 0..3 are understood; anything else
   round-trips as [Raw] so a newer writer's records survive an older
   reader. *)
let tag_meta = 0
let tag_event = 1
let tag_entry = 2
let tag_metrics = 3

let decode_body body =
  if String.length body = 0 then corrupt "empty record body";
  let tag = Char.code body.[0] in
  let wire_guard f =
    try f () with
    | Wire.Decode_error m -> corrupt "record tag %d: %s" tag m
    | Obs.Json.Parse_error m -> corrupt "metadata record: %s" m
  in
  wire_guard @@ fun () ->
  if tag = tag_meta then Meta (Obs.Json.of_string (String.sub body 1 (String.length body - 1)))
  else if tag = tag_event then begin
    let d = Wire.Dec.of_string ~pos:1 body in
    let ev = Wire.Event.decode d in
    if not (Wire.Dec.at_end d) then corrupt "event record: trailing bytes";
    Event ev
  end
  else if tag = tag_entry then begin
    let d = Wire.Dec.of_string ~pos:1 body in
    let e = Wire.Entry.decode d in
    if not (Wire.Dec.at_end d) then corrupt "journal record: trailing bytes";
    Entry e
  end
  else if tag = tag_metrics then begin
    let d = Wire.Dec.of_string ~pos:1 body in
    let m = Wire.Metrics.decode d in
    if not (Wire.Dec.at_end d) then corrupt "metrics record: trailing bytes";
    Metrics m
  end
  else Raw (tag, String.sub body 1 (String.length body - 1))

module Writer = struct
  type t = {
    oc : out_channel;
    mutable nrecords : int;
    buf : Buffer.t;
    lenb : Bytes.t;
  }

  let append w r =
    Buffer.clear w.buf;
    (match r with
    | Meta j ->
        Wire.Enc.u8 w.buf tag_meta;
        Buffer.add_string w.buf (Obs.Json.to_string j)
    | Event ev ->
        Wire.Enc.u8 w.buf tag_event;
        Wire.Event.encode w.buf ev
    | Entry e ->
        Wire.Enc.u8 w.buf tag_entry;
        Wire.Entry.encode w.buf e
    | Metrics m ->
        Wire.Enc.u8 w.buf tag_metrics;
        Wire.Metrics.encode w.buf m
    | Raw (tag, payload) ->
        Wire.Enc.u8 w.buf tag;
        Buffer.add_string w.buf payload);
    let body = Buffer.contents w.buf in
    let len = String.length body in
    if len > max_record_len then
      invalid_arg (Printf.sprintf "Store.Writer.append: %d-byte record" len);
    Bytes.set_int32_le w.lenb 0 (Int32.of_int len);
    output_bytes w.oc w.lenb;
    output_string w.oc body;
    Bytes.set_int32_le w.lenb 0 (Int32.of_int (Wire.crc32 body));
    output_bytes w.oc w.lenb;
    w.nrecords <- w.nrecords + 1

  let create ~path ~meta =
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
    let w = { oc; nrecords = 0; buf = Buffer.create 4096; lenb = Bytes.create 4 } in
    output_string oc magic;
    output_char oc (Char.chr Wire.version);
    output_string oc "\000\000\000";
    append w (Meta meta);
    w

  let event w ev = append w (Event ev)
  let entry w e = append w (Entry e)
  let metrics w m = append w (Metrics m)
  let records w = w.nrecords
  let flush w = flush w.oc
  let close w = close_out w.oc
end

module Reader = struct
  type t = {
    path : string;
    ic : in_channel;
    nrecords : int;
    index : int array; (* offset of record (i * index_every) *)
    meta_v : Obs.Json.t;
    lenb : Bytes.t;
  }

  (* Read the framed record at the current channel position; CRC is
     re-verified (cheap next to the I/O, and guards against the file
     changing under an open reader). Returns the body. *)
  let read_body_here ~path ic lenb =
    really_input ic lenb 0 4;
    let len = Int32.to_int (Bytes.get_int32_le lenb 0) in
    if len < 1 || len > max_record_len then corrupt "%s: bad record length %d" path len;
    let body = really_input_string ic len in
    really_input ic lenb 0 4;
    let crc = Int32.to_int (Bytes.get_int32_le lenb 0) land 0xFFFFFFFF in
    if Wire.crc32 body <> crc then corrupt "%s: checksum mismatch" path;
    body

  let open_ path =
    let ic = open_in_bin path in
    let fail_close fmt =
      Printf.ksprintf
        (fun s ->
          close_in_noerr ic;
          raise (Corrupt s))
        fmt
    in
    let size = in_channel_length ic in
    if size < 8 then fail_close "%s: too short for a store header (%d bytes)" path size;
    let hdr = really_input_string ic 8 in
    if not (String.equal (String.sub hdr 0 4) magic) then
      fail_close "%s: bad magic (not a trace store)" path;
    let ver = Char.code hdr.[4] in
    if ver <> Wire.version then
      fail_close "%s: format version %d, this build reads %d" path ver Wire.version;
    (* Sequential validation scan: length sanity + CRC for every record.
       The first failure marks the whole tail torn — records after a torn
       one cannot be trusted to be framed correctly. *)
    let offsets = ref [] in
    let count = ref 0 in
    let pos = ref 8 in
    let last_good = ref 8 in
    let torn = ref false in
    let buf4 = Bytes.create 4 in
    (try
       while !pos < size do
         if size - !pos < 4 then raise Exit;
         really_input ic buf4 0 4;
         let len = Int32.to_int (Bytes.get_int32_le buf4 0) in
         if len < 1 || len > max_record_len then raise Exit;
         if size - !pos - 4 < len + 4 then raise Exit;
         let body = really_input_string ic len in
         really_input ic buf4 0 4;
         let crc = Int32.to_int (Bytes.get_int32_le buf4 0) land 0xFFFFFFFF in
         if Wire.crc32 body <> crc then raise Exit;
         if !count mod index_every = 0 then offsets := !pos :: !offsets;
         incr count;
         pos := !pos + 4 + len + 4;
         last_good := !pos
       done
     with Exit | End_of_file -> torn := true);
    let recovery =
      if not !torn then Clean
      else begin
        (* Recover: truncate the torn tail so the next open is clean. *)
        close_in_noerr ic;
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd !last_good;
        Unix.close fd;
        Recovered { valid_records = !count; dropped_bytes = size - !last_good }
      end
    in
    if !count = 0 then begin
      close_in_noerr ic;
      corrupt "%s: no valid metadata record (unrecoverable)" path
    end;
    let ic = if !torn then open_in_bin path else ic in
    let lenb = Bytes.create 4 in
    seek_in ic 8;
    let meta_v =
      match decode_body (read_body_here ~path ic lenb) with
      | Meta j -> j
      | _ ->
          close_in_noerr ic;
          corrupt "%s: record 0 is not run metadata (unrecoverable)" path
      | exception Corrupt m ->
          close_in_noerr ic;
          raise (Corrupt m)
    in
    let index = Array.of_list (List.rev !offsets) in
    ({ path; ic; nrecords = !count; index; meta_v; lenb }, recovery)

  let meta t = t.meta_v
  let records t = t.nrecords

  let skip_one t =
    really_input t.ic t.lenb 0 4;
    let len = Int32.to_int (Bytes.get_int32_le t.lenb 0) in
    seek_in t.ic (pos_in t.ic + len + 4)

  let seek_to_record t n =
    let slot = n / index_every in
    seek_in t.ic t.index.(slot);
    for _ = 1 to n mod index_every do
      skip_one t
    done

  let get t n =
    if n < 0 || n >= t.nrecords then
      invalid_arg (Printf.sprintf "Store.Reader.get: record %d of %d" n t.nrecords);
    seek_to_record t n;
    decode_body (read_body_here ~path:t.path t.ic t.lenb)

  let iter ?(from = 0) f t =
    if from < 0 then invalid_arg "Store.Reader.iter: negative ~from";
    if from < t.nrecords then begin
      seek_to_record t from;
      for i = from to t.nrecords - 1 do
        f i (decode_body (read_body_here ~path:t.path t.ic t.lenb))
      done
    end

  let entries t =
    let acc = ref [] in
    iter (fun _ r -> match r with Entry e -> acc := e :: !acc | _ -> ()) t;
    let a = Array.of_list !acc in
    let n = Array.length a in
    (* reverse in place: [acc] collected newest-first *)
    for i = 0 to (n / 2) - 1 do
      let tmp = a.(i) in
      a.(i) <- a.(n - 1 - i);
      a.(n - 1 - i) <- tmp
    done;
    a

  let events t =
    let acc = ref [] in
    iter (fun _ r -> match r with Event ev -> acc := ev :: !acc | _ -> ()) t;
    List.rev !acc

  let metrics t =
    let last = ref None in
    iter (fun _ r -> match r with Metrics m -> last := Some m | _ -> ()) t;
    !last

  let close t = close_in_noerr t.ic
end

let write_json_atomic ~path j =
  let tmp = path ^ ".tmp" in
  Obs.Json.to_file tmp j;
  Sys.rename tmp path
