exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt
let version = 1

(* CRC-32, IEEE 802.3 / zlib polynomial, table-driven. Kept here (not in
   the store) so a record's checksum covers exactly the wire payload. *)
let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32 ?(crc = 0) s =
  let table = Lazy.force crc_table in
  let c = ref (lnot crc land 0xFFFFFFFF) in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  lnot !c land 0xFFFFFFFF

module Enc = struct
  type t = Buffer.t

  let u8 b n =
    if n < 0 || n > 255 then invalid_arg (Printf.sprintf "Wire.Enc.u8: %d" n);
    Buffer.add_char b (Char.chr n)

  (* Unsigned LEB128 over the int's 63-bit pattern: [lsr] pulls negative
     ints through as large unsigned values, so every int terminates in at
     most 9 groups of 7 bits. *)
  let varint b n =
    let n = ref n in
    let continue = ref true in
    while !continue do
      let low = !n land 0x7f in
      let rest = !n lsr 7 in
      if rest = 0 then begin
        Buffer.add_char b (Char.unsafe_chr low);
        continue := false
      end
      else begin
        Buffer.add_char b (Char.unsafe_chr (low lor 0x80));
        n := rest
      end
    done

  (* Zigzag: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ... so small magnitudes of
     either sign stay one byte. *)
  let int b n = varint b ((n lsl 1) lxor (n asr 62))
  let float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

  let string b s =
    varint b (String.length s);
    Buffer.add_string b s
end

module Dec = struct
  type t = { src : string; mutable p : int }

  let of_string ?(pos = 0) src = { src; p = pos }
  let pos d = d.p
  let at_end d = d.p >= String.length d.src

  let u8 d =
    if d.p >= String.length d.src then fail "truncated input at byte %d" d.p;
    let c = Char.code (String.unsafe_get d.src d.p) in
    d.p <- d.p + 1;
    c

  let varint d =
    let shift = ref 0 in
    let acc = ref 0 in
    let continue = ref true in
    while !continue do
      if !shift > 56 then fail "varint longer than 9 bytes at byte %d" d.p;
      let byte = u8 d in
      acc := !acc lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then continue := false
    done;
    !acc

  let int d =
    let z = varint d in
    (z lsr 1) lxor (-(z land 1))

  let float d =
    if d.p + 8 > String.length d.src then fail "truncated float at byte %d" d.p;
    let bits = String.get_int64_le d.src d.p in
    d.p <- d.p + 8;
    Int64.float_of_bits bits

  let string d =
    let len = varint d in
    if len < 0 || d.p + len > String.length d.src then
      fail "bad string length %d at byte %d" len d.p;
    let s = String.sub d.src d.p len in
    d.p <- d.p + len;
    s
end

module Event = struct
  open Sim.Types

  let fault_tag = function Duplicate -> 6 | Corrupt -> 7 | Delay -> 8 | Crash_restart -> 9

  let encode b (ev : int trace_event) =
    match ev with
    | Sent { src; dst; seq } ->
        Enc.u8 b 0;
        Enc.int b src;
        Enc.int b dst;
        Enc.varint b seq
    | Delivered { src; dst; seq } ->
        Enc.u8 b 1;
        Enc.int b src;
        Enc.int b dst;
        Enc.varint b seq
    | Dropped { src; dst; seq } ->
        Enc.u8 b 2;
        Enc.int b src;
        Enc.int b dst;
        Enc.varint b seq
    | Moved { who; action } ->
        Enc.u8 b 3;
        Enc.varint b who;
        Enc.int b action
    | Halted p ->
        Enc.u8 b 4;
        Enc.varint b p
    | Started p ->
        Enc.u8 b 5;
        Enc.varint b p
    | Fault { kind; src; dst; seq } ->
        Enc.u8 b (fault_tag kind);
        Enc.int b src;
        Enc.int b dst;
        Enc.varint b seq

  let decode d : int trace_event =
    let tag = Dec.u8 d in
    match tag with
    | 0 | 1 | 2 ->
        let src = Dec.int d in
        let dst = Dec.int d in
        let seq = Dec.varint d in
        if tag = 0 then Sent { src; dst; seq }
        else if tag = 1 then Delivered { src; dst; seq }
        else Dropped { src; dst; seq }
    | 3 ->
        let who = Dec.varint d in
        let action = Dec.int d in
        Moved { who; action }
    | 4 -> Halted (Dec.varint d)
    | 5 -> Started (Dec.varint d)
    | 6 | 7 | 8 | 9 ->
        let kind =
          match tag with 6 -> Duplicate | 7 -> Corrupt | 8 -> Delay | _ -> Crash_restart
        in
        let src = Dec.int d in
        let dst = Dec.int d in
        let seq = Dec.varint d in
        Fault { kind; src; dst; seq }
    | t -> fail "unknown event tag %d at byte %d" t (Dec.pos d - 1)

  let encode_list evs =
    let b = Buffer.create 4096 in
    Enc.varint b (List.length evs);
    List.iter (encode b) evs;
    Buffer.contents b

  let decode_list s =
    let d = Dec.of_string s in
    let n = Dec.varint d in
    if n < 0 then fail "bad event count %d" n;
    let acc = ref [] in
    for _ = 1 to n do
      acc := decode d :: !acc
    done;
    List.rev !acc
end

module Entry = struct
  module J = Sim.Runner.Journal

  let encode_coords b (co : J.coords) =
    Enc.int b co.J.src;
    Enc.int b co.J.dst;
    Enc.varint b co.J.seq

  let decode_coords d : J.coords =
    let src = Dec.int d in
    let dst = Dec.int d in
    let seq = Dec.varint d in
    { J.src; dst; seq }

  (* Fallback tags fold the reason and target presence into the tag byte:
     2/3 blocked, 4/5 invalid, 6/7 scheduler-exn; even = has target. *)
  let encode b (e : J.entry) =
    match e with
    | J.Forced co ->
        Enc.u8 b 0;
        encode_coords b co
    | J.Chose co ->
        Enc.u8 b 1;
        encode_coords b co
    | J.Fallback (reason, target) -> (
        let base =
          match reason with J.Blocked -> 2 | J.Invalid -> 4 | J.Sched_exn -> 6
        in
        match target with
        | Some co ->
            Enc.u8 b base;
            encode_coords b co
        | None -> Enc.u8 b (base + 1))
    | J.Stopped -> Enc.u8 b 8
    | J.Watchdog -> Enc.u8 b 9

  let decode d : J.entry =
    let tag = Dec.u8 d in
    match tag with
    | 0 -> J.Forced (decode_coords d)
    | 1 -> J.Chose (decode_coords d)
    | 2 -> J.Fallback (J.Blocked, Some (decode_coords d))
    | 3 -> J.Fallback (J.Blocked, None)
    | 4 -> J.Fallback (J.Invalid, Some (decode_coords d))
    | 5 -> J.Fallback (J.Invalid, None)
    | 6 -> J.Fallback (J.Sched_exn, Some (decode_coords d))
    | 7 -> J.Fallback (J.Sched_exn, None)
    | 8 -> J.Stopped
    | 9 -> J.Watchdog
    | t -> fail "unknown journal tag %d at byte %d" t (Dec.pos d - 1)

  let encode_array entries =
    let b = Buffer.create 4096 in
    Enc.varint b (Array.length entries);
    Array.iter (encode b) entries;
    Buffer.contents b

  let decode_array s =
    let d = Dec.of_string s in
    let n = Dec.varint d in
    if n < 0 then fail "bad entry count %d" n;
    Array.init n (fun _ -> decode d)
end

module Metrics = struct
  module M = Obs.Metrics

  let encode_counts b (c : M.counts) =
    Enc.varint b c.M.p2p;
    Enc.varint b c.M.p2m;
    Enc.varint b c.M.m2p;
    Enc.varint b c.M.self

  let decode_counts d : M.counts =
    let p2p = Dec.varint d in
    let p2m = Dec.varint d in
    let m2p = Dec.varint d in
    let self = Dec.varint d in
    { M.p2p; p2m; m2p; self }

  let encode b (m : M.t) =
    Enc.varint b m.M.runs;
    encode_counts b m.M.sent;
    encode_counts b m.M.delivered;
    encode_counts b m.M.dropped;
    Enc.varint b m.M.batches;
    Enc.varint b m.M.steps;
    Enc.varint b m.M.starved;
    Enc.varint b m.M.invalid_decisions;
    Enc.varint b m.M.scheduler_exns;
    Enc.varint b m.M.injected_dup;
    Enc.varint b m.M.injected_corrupt;
    Enc.varint b m.M.injected_delay;
    Enc.varint b m.M.injected_crash;
    Enc.varint b m.M.timed_out;
    Enc.varint b m.M.trial_retries;
    Enc.float b m.M.wall_clock;
    Enc.float b m.M.gc_minor_words;
    Enc.float b m.M.gc_major_words

  let decode d : M.t =
    let runs = Dec.varint d in
    let sent = decode_counts d in
    let delivered = decode_counts d in
    let dropped = decode_counts d in
    let batches = Dec.varint d in
    let steps = Dec.varint d in
    let starved = Dec.varint d in
    let invalid_decisions = Dec.varint d in
    let scheduler_exns = Dec.varint d in
    let injected_dup = Dec.varint d in
    let injected_corrupt = Dec.varint d in
    let injected_delay = Dec.varint d in
    let injected_crash = Dec.varint d in
    let timed_out = Dec.varint d in
    let trial_retries = Dec.varint d in
    let wall_clock = Dec.float d in
    let gc_minor_words = Dec.float d in
    let gc_major_words = Dec.float d in
    {
      M.runs;
      sent;
      delivered;
      dropped;
      batches;
      steps;
      starved;
      invalid_decisions;
      scheduler_exns;
      injected_dup;
      injected_corrupt;
      injected_delay;
      injected_crash;
      timed_out;
      trial_retries;
      wall_clock;
      gc_minor_words;
      gc_major_words;
    }

  let to_string m =
    let b = Buffer.create 128 in
    encode b m;
    Buffer.contents b

  let of_string s = decode (Dec.of_string s)
end
