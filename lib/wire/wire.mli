(** Compact, versioned binary encoding for the durability layer
    (DESIGN.md section 16): trace events, decision-journal entries and
    {!Obs.Metrics} records. The format is what `lib/store` frames into
    checksummed records; everything here is payload encoding only.

    Design points:
    - integers are LEB128 varints; signed values (pids can be
      [Types.env_pid = -1], game actions can be negative) are
      zigzag-mapped first, so small magnitudes stay at one byte;
    - every composite starts with a one-byte tag, and decoders reject
      unknown tags with {!Decode_error} rather than guessing — version
      negotiation lives in the store header, not per record;
    - decoding NEVER raises anything but {!Decode_error} on malformed or
      truncated input (qcheck-enforced), so a corrupt store degrades
      into a clean error path. *)

exception Decode_error of string

val version : int
(** Current format version (1). Stamped into store headers. *)

val crc32 : ?crc:int -> string -> int
(** CRC-32 (IEEE 802.3, the zlib polynomial) of a string, as an
    unsigned int. [?crc] chains partial computations: [crc32 ~crc:c s]
    continues a checksum [c] over [s]. *)

(** {1 Primitive encoders/decoders}

    [Enc] appends to a [Buffer.t]; [Dec] reads from a string at a
    mutable position. *)

module Enc : sig
  type t = Buffer.t

  val u8 : t -> int -> unit
  (** One byte, 0..255. @raise Invalid_argument out of range. *)

  val varint : t -> int -> unit
  (** Unsigned LEB128 of the int's 63-bit two's-complement pattern;
      negative ints encode (at 9 bytes) and round-trip, but callers
      holding signed data should prefer {!int}. *)

  val int : t -> int -> unit
  (** Zigzag + LEB128: small magnitudes of either sign stay small. *)

  val float : t -> float -> unit
  (** IEEE 754 double, 8 bytes little-endian. *)

  val string : t -> string -> unit
  (** Varint length prefix + raw bytes. *)
end

module Dec : sig
  type t

  val of_string : ?pos:int -> string -> t
  val pos : t -> int
  val at_end : t -> bool

  val u8 : t -> int
  val varint : t -> int
  val int : t -> int
  val float : t -> float
  val string : t -> string
  (** All raise {!Decode_error} on truncation or malformed input
      (varint longer than 63 bits, length prefix past the end...). *)
end

(** {1 Composite codecs} *)

(** Trace events with [int] actions — the action type every bundled
    game and the compiled cheap-talk protocols use. 1 tag byte plus
    zigzag coordinates: typical events are 2–5 bytes. *)
module Event : sig
  val encode : Enc.t -> int Sim.Types.trace_event -> unit
  val decode : Dec.t -> int Sim.Types.trace_event

  val encode_list : int Sim.Types.trace_event list -> string
  (** Varint count, then the events in order. *)

  val decode_list : string -> int Sim.Types.trace_event list
end

(** Decision-journal entries ({!Sim.Runner.Journal.entry}). *)
module Entry : sig
  val encode : Enc.t -> Sim.Runner.Journal.entry -> unit
  val decode : Dec.t -> Sim.Runner.Journal.entry

  val encode_array : Sim.Runner.Journal.entry array -> string
  val decode_array : string -> Sim.Runner.Journal.entry array
end

(** Full {!Obs.Metrics.t} records: the 15 deterministic counters and
    message-class vectors as varints in declaration order, then the
    three environmental floats as fixed 8-byte doubles. *)
module Metrics : sig
  val encode : Enc.t -> Obs.Metrics.t -> unit
  val decode : Dec.t -> Obs.Metrics.t

  val to_string : Obs.Metrics.t -> string
  val of_string : string -> Obs.Metrics.t
end
