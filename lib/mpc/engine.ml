module Gf = Field.Gf
module Aba = Agreement.Aba
module Coin = Agreement.Coin

type session_id =
  | Input_share of int
  | Rand_share of int * int
  | Mul_share of int * int

type vote_id =
  | Input_vote of int
  | Mul_vote of int * int

type msg =
  | Share_msg of session_id * Avss.msg
  | Vote_msg of vote_id * Aba.msg
  | Output_msg of int * Gf.t (* stage, share of the recipient's stage output *)

let pp_session fmt = function
  | Input_share d -> Format.fprintf fmt "input[%d]" d
  | Rand_share (d, k) -> Format.fprintf fmt "rand[%d,%d]" d k
  | Mul_share (g, d) -> Format.fprintf fmt "mul[%d,%d]" g d

let pp_vote fmt = function
  | Input_vote d -> Format.fprintf fmt "vote-in[%d]" d
  | Mul_vote (g, d) -> Format.fprintf fmt "vote-mul[%d,%d]" g d

let pp_msg fmt = function
  | Share_msg (sid, m) -> Format.fprintf fmt "%a:%a" pp_session sid Avss.pp_msg m
  | Vote_msg (vid, m) -> Format.fprintf fmt "%a:%a" pp_vote vid Aba.pp_msg m
  | Output_msg (stage, v) -> Format.fprintf fmt "output-share(%d,%a)" stage Gf.pp v

type mul_state = {
  mutable started : bool;
  mutable reduced : bool;
}

(* All per-session/per-vote state lives in dense arrays: session and vote
   ids enumerate a fixed finite space (n dealers x {input, randomness
   slots, multiplication gates}), so each id maps to a stable small
   integer and the old polymorphic-variant-keyed Hashtbls — whose
   caml_hash + structural-compare walks dominated the settle-loop
   profile — become O(1) array reads. Malformed ids (out-of-range dealer,
   slot, or gate) map to index -1 and their messages are ignored. *)
type t = {
  n : int;
  deg : int; (* sharing degree (privacy threshold) *)
  faults : int; (* Byzantine fault bound *)
  me : int;
  circuit : Circuit.t;
  mutable input : Gf.t;
  mutable rng : Random.State.t;
  mutable coin_seed : int;
  mul_pos : int array; (* gate index -> dense mul-gate position, -1 otherwise *)
  sessions : Avss.t option array; (* session_index-indexed, created on demand *)
  votes : Aba.t option array; (* vote_index-indexed, created on demand *)
  proposed : bool array; (* vote_index-indexed *)
  mutable core : int list option;
  rand_shares : Gf.t option array;
  gate_shares : Gf.t option array;
  muls : mul_state array; (* mul_pos-indexed *)
  mul_gate_ids : int list;
  stages : int array array; (* per stage: one output gate per player *)
  stage_sent : bool array;
  output_points : Gf.t option array; (* stage*n + src -> share of MY stage output *)
  stage_npoints : int array;
  stage_results : Gf.t option array;
  mutable result : Gf.t option;
}

type reaction = {
  sends : (int * msg) list;
  result : Gf.t option;
}

let create ?stages ~n ~degree ~faults ~me ~circuit ~input ~rng ~coin_seed () =
  if n <= 3 * faults then invalid_arg "Engine.create: need n > 3*faults";
  if n < degree + (2 * faults) + 1 then
    invalid_arg "Engine.create: need n >= degree + 2*faults + 1";
  if Circuit.mul_count circuit > 0 && n < (2 * degree) + faults + 1 then
    invalid_arg "Engine.create: multiplication needs n >= 2*degree + faults + 1";
  if circuit.Circuit.n_inputs <> n then invalid_arg "Engine.create: circuit needs n inputs";
  let stages = match stages with None -> [| circuit.Circuit.outputs |] | Some s -> s in
  if Array.length stages = 0 then invalid_arg "Engine.create: need at least one stage";
  Array.iter
    (fun st ->
      if Array.length st <> n then invalid_arg "Engine.create: each stage needs n outputs";
      Array.iter
        (fun g ->
          if g < 0 || g >= Array.length circuit.Circuit.gates then
            invalid_arg "Engine.create: stage references missing gate")
        st)
    stages;
  let n_gates = Array.length circuit.Circuit.gates in
  let mul_pos = Array.make n_gates (-1) in
  let n_mul = ref 0 in
  for i = 0 to n_gates - 1 do
    match circuit.Circuit.gates.(i) with
    | Circuit.Mul _ ->
        mul_pos.(i) <- !n_mul;
        incr n_mul
    | _ -> ()
  done;
  let n_mul = !n_mul in
  let n_random = circuit.Circuit.n_random in
  {
    n;
    deg = degree;
    faults;
    me;
    circuit;
    input;
    rng;
    coin_seed;
    mul_pos;
    sessions = Array.make (n * (1 + n_random + n_mul)) None;
    votes = Array.make (n * (1 + n_mul)) None;
    proposed = Array.make (n * (1 + n_mul)) false;
    core = None;
    rand_shares = Array.make n_random None;
    gate_shares = Array.make n_gates None;
    muls = Array.init n_mul (fun _ -> { started = false; reduced = false });
    mul_gate_ids =
      List.filter
        (fun i -> mul_pos.(i) >= 0)
        (List.init n_gates (fun i -> i));
    stages;
    stage_sent = Array.make (Array.length stages) false;
    output_points = Array.make (Array.length stages * n) None;
    stage_npoints = Array.make (Array.length stages) 0;
    stage_results = Array.make (Array.length stages) None;
    result = None;
  }

(* Session recycling: scrub every per-session field back to the state
   [create] leaves it in, reusing the dense arrays (for realistic specs
   they are the dominant per-player setup allocation: n*(1+R+M) AVSS
   session slots plus votes, shares and stage points). What stays:
   everything derived from the static shape — n, degree, faults, me,
   the circuit, mul_pos/mul_gate_ids, the stage layout — which is why a
   reset engine is only valid for a new session of the SAME plan (the
   caller guarantees the circuit/stages are unchanged; Compile.Pool
   does). AVSS/ABA sub-states drop to None and are recreated on demand,
   exactly as a fresh engine would; the new coin_seed flows into the
   coins because votes are rebuilt. *)
let reset (e : t) ~input ~rng ~coin_seed =
  Array.fill e.sessions 0 (Array.length e.sessions) None;
  Array.fill e.votes 0 (Array.length e.votes) None;
  Array.fill e.proposed 0 (Array.length e.proposed) false;
  e.core <- None;
  Array.fill e.rand_shares 0 (Array.length e.rand_shares) None;
  Array.fill e.gate_shares 0 (Array.length e.gate_shares) None;
  Array.iter
    (fun st ->
      st.started <- false;
      st.reduced <- false)
    e.muls;
  Array.fill e.stage_sent 0 (Array.length e.stage_sent) false;
  Array.fill e.output_points 0 (Array.length e.output_points) None;
  Array.fill e.stage_npoints 0 (Array.length e.stage_npoints) 0;
  Array.fill e.stage_results 0 (Array.length e.stage_results) None;
  e.result <- None;
  e.input <- input;
  e.rng <- rng;
  e.coin_seed <- coin_seed

let dealer_of = function
  | Input_share d | Rand_share (d, _) | Mul_share (_, d) -> d

(* Dense index of a session id, -1 when malformed. Layout:
   [0, n)                      Input_share d
   [n, n + k_max*n)            Rand_share (d, k) at n + k*n + d
   [n*(1+k_max), ...)          Mul_share (g, d) at n*(1+k_max) + mul_pos(g)*n + d *)
let session_index e = function
  | Input_share d -> if d < 0 || d >= e.n then -1 else d
  | Rand_share (d, k) ->
      if d < 0 || d >= e.n || k < 0 || k >= e.circuit.Circuit.n_random then -1
      else e.n + (k * e.n) + d
  | Mul_share (g, d) ->
      if
        d < 0 || d >= e.n || g < 0
        || g >= Array.length e.mul_pos
        || e.mul_pos.(g) < 0
      then -1
      else (e.n * (1 + e.circuit.Circuit.n_random)) + (e.mul_pos.(g) * e.n) + d

let vote_index e = function
  | Input_vote d -> if d < 0 || d >= e.n then -1 else d
  | Mul_vote (g, d) ->
      if
        d < 0 || d >= e.n || g < 0
        || g >= Array.length e.mul_pos
        || e.mul_pos.(g) < 0
      then -1
      else e.n + (e.mul_pos.(g) * e.n) + d

(* A stable per-vote instance number so every player derives the same
   common coin for the same agreement. *)
let instance_of e = function
  | Input_vote d -> d
  | Mul_vote (g, d) -> e.n + (g * e.n) + d

(* [session]/[vote] create on demand; callers pass well-formed ids (the
   message path validates the index first). *)
let session e sid =
  let i = session_index e sid in
  match e.sessions.(i) with
  | Some s -> s
  | None ->
      let s =
        Avss.create ~n:e.n ~degree:e.deg ~faults:e.faults ~me:e.me ~dealer:(dealer_of sid)
      in
      e.sessions.(i) <- Some s;
      s

let vote e vid =
  let i = vote_index e vid in
  match e.votes.(i) with
  | Some v -> v
  | None ->
      let coin = Coin.optimistic ~seed:e.coin_seed ~instance:(instance_of e vid) in
      let v = Aba.create ~n:e.n ~f:e.faults ~me:e.me ~coin in
      e.votes.(i) <- Some v;
      v

let wrap_share sid sends = List.map (fun (dst, m) -> (dst, Share_msg (sid, m))) sends
let wrap_vote vid sends = List.map (fun (dst, m) -> (dst, Vote_msg (vid, m))) sends

let propose e vid value =
  let i = vote_index e vid in
  if e.proposed.(i) then []
  else begin
    e.proposed.(i) <- true;
    wrap_vote vid (Aba.propose (vote e vid) value).Aba.sends
  end

let decision_at e i = match e.votes.(i) with None -> None | Some v -> Aba.decision v

let session_accepted_at e i =
  match e.sessions.(i) with None -> false | Some s -> Avss.is_accepted s

let session_share_at e i =
  match e.sessions.(i) with None -> None | Some s -> Avss.share s

let session_share e sid = session_share_at e (session_index e sid)

(* Dealer d's input bundle: its input sharing plus every randomness
   contribution (contiguous session indices d, n+d, 2n+d, ...). *)
let bundle_accepted e d =
  let ok = ref (session_accepted_at e d) in
  let k = ref 0 in
  while !ok && !k < e.circuit.Circuit.n_random do
    if not (session_accepted_at e (e.n + (!k * e.n) + d)) then ok := false;
    incr k
  done;
  !ok

let mul_gates e = e.mul_gate_ids
let mul_state e g = e.muls.(e.mul_pos.(g))

(* --- the cascade: run all progress rules to a local fixpoint --- *)

(* Input votes occupy vote indices [0, n); gate g's votes occupy the
   contiguous block [n + mul_pos(g)*n, n + (mul_pos(g)+1)*n). *)
let count_yes_block e ~base =
  let acc = ref 0 in
  for d = 0 to e.n - 1 do
    if decision_at e (base + d) = Some true then incr acc
  done;
  !acc

let all_decided_block e ~base =
  let ok = ref true in
  for d = 0 to e.n - 1 do
    if Option.is_none (decision_at e (base + d)) then ok := false
  done;
  !ok

let settle e =
  let chunks = ref [] in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    let step sends =
      match sends with
      | [] -> ()
      | _ ->
          progressed := true;
          chunks := sends :: !chunks
    in

    (* Propose YES for input dealers whose whole bundle we accepted. *)
    for d = 0 to e.n - 1 do
      if (not e.proposed.(d)) && bundle_accepted e d then
        step (propose e (Input_vote d) true)
    done;

    (* Input close-out: n-f accepted dealers seen -> vote NO on the rest. *)
    if count_yes_block e ~base:0 >= e.n - e.faults then
      for d = 0 to e.n - 1 do
        if not e.proposed.(d) then step (propose e (Input_vote d) false)
      done;

    (* Input completion: all votes decided and accepted bundles in hand. *)
    (match e.core with
    | Some _ -> ()
    | None ->
        if all_decided_block e ~base:0 then begin
          let yes =
            List.filter (fun d -> decision_at e d = Some true)
              (List.init e.n (fun d -> d))
          in
          if List.for_all (bundle_accepted e) yes then begin
            e.core <- Some yes;
            (* Randomness wires: sum of the core's contributions. *)
            for k = 0 to e.circuit.Circuit.n_random - 1 do
              let sum =
                List.fold_left
                  (fun s d ->
                    match session_share_at e (e.n + (k * e.n) + d) with
                    | Some v -> Gf.add s v
                    | None -> s)
                  Gf.zero yes
              in
              e.rand_shares.(k) <- Some sum
            done;
            progressed := true
          end
        end);

    (* Gate evaluation (only once the core is known). *)
    (match e.core with
    | None -> ()
    | Some core ->
        Array.iteri
          (fun gi gate ->
            if Option.is_none e.gate_shares.(gi) then begin
              let value v = e.gate_shares.(gi) <- Some v; progressed := true in
              let ready j = e.gate_shares.(j) in
              match gate with
              | Circuit.Input d ->
                  if List.mem d core then begin
                    match session_share e (Input_share d) with
                    | Some v -> value v
                    | None -> ()
                  end
                  else value Gf.zero (* excluded dealer: default input 0 *)
              | Circuit.Random k -> (
                  match e.rand_shares.(k) with Some v -> value v | None -> ())
              | Circuit.Const c ->
                  (* constants are a valid degree-0 sharing of themselves *)
                  value c
              | Circuit.Add (a, b) -> (
                  match (ready a, ready b) with
                  | Some va, Some vb -> value (Gf.add va vb)
                  | _ -> ())
              | Circuit.Sub (a, b) -> (
                  match (ready a, ready b) with
                  | Some va, Some vb -> value (Gf.sub va vb)
                  | _ -> ())
              | Circuit.Scale (c, a) -> (
                  match ready a with Some va -> value (Gf.mul c va) | None -> ())
              | Circuit.Mul (a, b) -> (
                  let st = mul_state e gi in
                  match (ready a, ready b) with
                  | Some va, Some vb ->
                      if not st.started then begin
                        st.started <- true;
                        (* Reshare our degree-2t product share. *)
                        let sid = Mul_share (gi, e.me) in
                        let r =
                          Avss.deal (session e sid) e.rng ~secret:(Gf.mul va vb)
                        in
                        step (wrap_share sid r.Avss.sends)
                      end
                  | _ -> ())
            end)
          e.circuit.Circuit.gates;

        (* Multiplication reductions in flight. *)
        List.iter
          (fun gi ->
            let st = mul_state e gi in
            if st.started && not st.reduced then begin
              let vote_base = e.n + (e.mul_pos.(gi) * e.n) in
              let share_base =
                (e.n * (1 + e.circuit.Circuit.n_random)) + (e.mul_pos.(gi) * e.n)
              in
              (* Vote YES for contributors whose resharing we accepted. *)
              for d = 0 to e.n - 1 do
                if (not e.proposed.(vote_base + d)) && session_accepted_at e (share_base + d)
                then step (propose e (Mul_vote (gi, d)) true)
              done;
              (* Close-out once enough contributors for a degree-2d
                 interpolation are in. *)
              if count_yes_block e ~base:vote_base >= (2 * e.deg) + 1 then
                for d = 0 to e.n - 1 do
                  if not e.proposed.(vote_base + d) then
                    step (propose e (Mul_vote (gi, d)) false)
                done;
              (* Reduction: all votes decided, all YES resharings in hand. *)
              if all_decided_block e ~base:vote_base then begin
                let contributors =
                  List.filter
                    (fun d -> decision_at e (vote_base + d) = Some true)
                    (List.init e.n (fun d -> d))
                in
                if
                  List.length contributors >= (2 * e.deg) + 1
                  && List.for_all
                       (fun d -> session_accepted_at e (share_base + d))
                       contributors
                then begin
                  let lambda =
                    Shamir.lagrange_at_zero (List.map (fun d -> d + 1) contributors)
                  in
                  let share =
                    List.fold_left
                      (fun s d ->
                        let coeff = List.assoc (d + 1) lambda in
                        match session_share_at e (share_base + d) with
                        | Some v -> Gf.add s (Gf.mul coeff v)
                        | None -> s)
                      Gf.zero contributors
                  in
                  st.reduced <- true;
                  e.gate_shares.(gi) <- Some share;
                  progressed := true
                end
              end
            end)
          (mul_gates e));

    (* Output dispatch, stage by stage: stage s output shares go out only
       once our own stage s-1 value is reconstructed (the mediator's s-th
       message follows its (s-1)-th). *)
    Array.iteri
      (fun si outs ->
        if
          (not e.stage_sent.(si))
          && (si = 0 || Option.is_some e.stage_results.(si - 1))
          && Array.for_all (fun gi -> Option.is_some e.gate_shares.(gi)) outs
        then begin
          e.stage_sent.(si) <- true;
          let sends =
            List.filter_map
              (fun o ->
                match e.gate_shares.(outs.(o)) with
                | Some v ->
                    if o = e.me then begin
                      if Option.is_none e.output_points.((si * e.n) + e.me) then begin
                        e.output_points.((si * e.n) + e.me) <- Some v;
                        e.stage_npoints.(si) <- e.stage_npoints.(si) + 1
                      end;
                      None
                    end
                    else Some (o, Output_msg (si, v))
                | None -> None)
              (List.init e.n (fun o -> o))
          in
          step sends
        end)
      e.stages;

    (* Stage reconstruction via online error correction. The point arrays
       are only materialised once enough shares are in for the e = 0
       attempt to be admissible (r >= 2t+1). *)
    Array.iteri
      (fun si r ->
        match r with
        | Some _ -> ()
        | None ->
            let npts = e.stage_npoints.(si) in
            if npts >= (2 * e.deg) + 1 then begin
              let idx = Array.make npts 0 in
              let ys = Array.make npts Gf.zero in
              let i = ref 0 in
              for src = 0 to e.n - 1 do
                match e.output_points.((si * e.n) + src) with
                | Some v ->
                    idx.(!i) <- src + 1;
                    ys.(!i) <- v;
                    incr i
                | None -> ()
              done;
              (* Reveals are robust up to the sharing degree: rational
                 players may corrupt their shares even when the fault budget
                 is lower, and n >= 3*degree + 1 regimes must absorb that
                 (Theorem 4.4's cotermination argument). *)
              match
                Shamir.online_decode_arrays ~t:e.deg ~max_faults:(max e.deg e.faults) idx ys
              with
              | Some v ->
                  e.stage_results.(si) <- Some v;
                  if si = Array.length e.stages - 1 then e.result <- Some v;
                  progressed := true
              | None -> ()
            end)
      e.stage_results
  done;
  List.concat (List.rev !chunks)

let start (e : t) =
  let sends = ref [] in
  (* Deal our input and randomness contributions. *)
  let deal sid secret =
    let r = Avss.deal (session e sid) e.rng ~secret in
    sends := !sends @ wrap_share sid r.Avss.sends
  in
  deal (Input_share e.me) e.input;
  for k = 0 to e.circuit.Circuit.n_random - 1 do
    (* Contributions respect the slot's distribution: a mod-m slot sums
       per-player values drawn uniformly in [0, m). *)
    let m = e.circuit.Circuit.random_moduli.(k) in
    let v = if m > 0 then Gf.of_int (Random.State.int e.rng m) else Gf.random e.rng in
    deal (Rand_share (e.me, k)) v
  done;
  let before = e.result in
  let more = settle e in
  let result = match (before, e.result) with None, Some v -> Some v | _ -> None in
  { sends = !sends @ more; result }

let handle (e : t) ~src m =
  let before = e.result in
  let sends =
    match m with
    | Share_msg (sid, sub) ->
        if session_index e sid < 0 then []
        else begin
          let r = Avss.handle (session e sid) ~src sub in
          wrap_share sid r.Avss.sends
        end
    | Vote_msg (vid, sub) ->
        if vote_index e vid < 0 then []
        else begin
          let r = Aba.handle (vote e vid) ~src sub in
          wrap_vote vid r.Aba.sends
        end
    | Output_msg (stage, v) ->
        if
          stage >= 0
          && stage < Array.length e.stages
          && src >= 0 && src < e.n
          && Option.is_none e.output_points.((stage * e.n) + src)
        then begin
          e.output_points.((stage * e.n) + src) <- Some v;
          e.stage_npoints.(stage) <- e.stage_npoints.(stage) + 1
        end;
        []
  in
  let more = settle e in
  let result = match (before, e.result) with None, Some v -> Some v | _ -> None in
  { sends = sends @ more; result }

let result (e : t) = e.result
let stage_results (e : t) = Array.copy e.stage_results
let input_core e = e.core

(* Canonical hash of the engine's dense-array state, for the model
   checker's state fingerprints. Deep structural hash with high traversal
   limits (the default polymorphic hash inspects only ~10 nodes — useless
   as a digest): covers every AVSS session, ABA vote, share/point array
   and the reconstruction results, plus the rng (its state drives future
   sends, so two engines that differ only there must not merge). Coin
   closures hash as opaque blocks, which is sound: they are pure
   functions of static per-run seeds. Equal digests are not a proof of
   equal state (it is a hash); see DESIGN.md section 13 for the soundness
   argument of fingerprint-based deduplication. *)
let digest (e : t) =
  let h = ref 0 in
  let mix v = h := ((!h * 0x01000193) lxor v) land max_int in
  let deep x = Hashtbl.hash_param 4096 4096 x in
  mix (deep e.sessions);
  mix (deep e.votes);
  mix (deep e.proposed);
  mix (deep e.core);
  mix (deep e.rand_shares);
  mix (deep e.gate_shares);
  mix (deep e.muls);
  mix (deep e.stage_sent);
  mix (deep e.output_points);
  mix (deep e.stage_npoints);
  mix (deep e.stage_results);
  mix (deep e.result);
  mix (deep e.rng);
  !h
