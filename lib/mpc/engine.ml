module Gf = Field.Gf
module Aba = Agreement.Aba
module Coin = Agreement.Coin

type session_id =
  | Input_share of int
  | Rand_share of int * int
  | Mul_share of int * int

type vote_id =
  | Input_vote of int
  | Mul_vote of int * int

type msg =
  | Share_msg of session_id * Avss.msg
  | Vote_msg of vote_id * Aba.msg
  | Output_msg of int * Gf.t (* stage, share of the recipient's stage output *)

let pp_session fmt = function
  | Input_share d -> Format.fprintf fmt "input[%d]" d
  | Rand_share (d, k) -> Format.fprintf fmt "rand[%d,%d]" d k
  | Mul_share (g, d) -> Format.fprintf fmt "mul[%d,%d]" g d

let pp_vote fmt = function
  | Input_vote d -> Format.fprintf fmt "vote-in[%d]" d
  | Mul_vote (g, d) -> Format.fprintf fmt "vote-mul[%d,%d]" g d

let pp_msg fmt = function
  | Share_msg (sid, m) -> Format.fprintf fmt "%a:%a" pp_session sid Avss.pp_msg m
  | Vote_msg (vid, m) -> Format.fprintf fmt "%a:%a" pp_vote vid Aba.pp_msg m
  | Output_msg (stage, v) -> Format.fprintf fmt "output-share(%d,%a)" stage Gf.pp v

type mul_state = {
  mutable started : bool;
  mutable reduced : bool;
}

type t = {
  n : int;
  deg : int; (* sharing degree (privacy threshold) *)
  faults : int; (* Byzantine fault bound *)
  me : int;
  circuit : Circuit.t;
  input : Gf.t;
  rng : Random.State.t;
  coin_seed : int;
  sessions : (session_id, Avss.t) Hashtbl.t;
  votes : (vote_id, Aba.t) Hashtbl.t;
  proposed : (vote_id, unit) Hashtbl.t;
  mutable core : int list option;
  rand_shares : Gf.t option array;
  gate_shares : Gf.t option array;
  muls : (int, mul_state) Hashtbl.t;
  mul_gate_ids : int list;
  stages : int array array; (* per stage: one output gate per player *)
  stage_sent : bool array;
  output_points : (int * int, Gf.t) Hashtbl.t; (* (stage, src) -> share of MY stage output *)
  stage_results : Gf.t option array;
  mutable result : Gf.t option;
}

type reaction = {
  sends : (int * msg) list;
  result : Gf.t option;
}

let create ?stages ~n ~degree ~faults ~me ~circuit ~input ~rng ~coin_seed () =
  if n <= 3 * faults then invalid_arg "Engine.create: need n > 3*faults";
  if n < degree + (2 * faults) + 1 then
    invalid_arg "Engine.create: need n >= degree + 2*faults + 1";
  if Circuit.mul_count circuit > 0 && n < (2 * degree) + faults + 1 then
    invalid_arg "Engine.create: multiplication needs n >= 2*degree + faults + 1";
  if circuit.Circuit.n_inputs <> n then invalid_arg "Engine.create: circuit needs n inputs";
  let stages = match stages with None -> [| circuit.Circuit.outputs |] | Some s -> s in
  if Array.length stages = 0 then invalid_arg "Engine.create: need at least one stage";
  Array.iter
    (fun st ->
      if Array.length st <> n then invalid_arg "Engine.create: each stage needs n outputs";
      Array.iter
        (fun g ->
          if g < 0 || g >= Array.length circuit.Circuit.gates then
            invalid_arg "Engine.create: stage references missing gate")
        st)
    stages;
  {
    n;
    deg = degree;
    faults;
    me;
    circuit;
    input;
    rng;
    coin_seed;
    sessions = Hashtbl.create 32;
    votes = Hashtbl.create 32;
    proposed = Hashtbl.create 32;
    core = None;
    rand_shares = Array.make circuit.Circuit.n_random None;
    gate_shares = Array.make (Array.length circuit.Circuit.gates) None;
    muls = Hashtbl.create 8;
    mul_gate_ids =
      List.filter
        (fun i ->
          match circuit.Circuit.gates.(i) with Circuit.Mul _ -> true | _ -> false)
        (List.init (Array.length circuit.Circuit.gates) (fun i -> i));
    stages;
    stage_sent = Array.make (Array.length stages) false;
    output_points = Hashtbl.create 8;
    stage_results = Array.make (Array.length stages) None;
    result = None;
  }

let dealer_of = function
  | Input_share d | Rand_share (d, _) | Mul_share (_, d) -> d

(* A stable per-vote instance number so every player derives the same
   common coin for the same agreement. *)
let instance_of e = function
  | Input_vote d -> d
  | Mul_vote (g, d) -> e.n + (g * e.n) + d

let session e sid =
  match Hashtbl.find_opt e.sessions sid with
  | Some s -> s
  | None ->
      let s = Avss.create ~n:e.n ~degree:e.deg ~faults:e.faults ~me:e.me ~dealer:(dealer_of sid) in
      Hashtbl.replace e.sessions sid s;
      s

let vote e vid =
  match Hashtbl.find_opt e.votes vid with
  | Some v -> v
  | None ->
      let coin = Coin.optimistic ~seed:e.coin_seed ~instance:(instance_of e vid) in
      let v = Aba.create ~n:e.n ~f:e.faults ~me:e.me ~coin in
      Hashtbl.replace e.votes vid v;
      v

let wrap_share sid sends = List.map (fun (dst, m) -> (dst, Share_msg (sid, m))) sends
let wrap_vote vid sends = List.map (fun (dst, m) -> (dst, Vote_msg (vid, m))) sends

let propose e vid value =
  if Hashtbl.mem e.proposed vid then []
  else begin
    Hashtbl.replace e.proposed vid ();
    wrap_vote vid (Aba.propose (vote e vid) value).Aba.sends
  end

let decision_of e vid =
  match Hashtbl.find_opt e.votes vid with None -> None | Some v -> Aba.decision v

let session_accepted e sid =
  match Hashtbl.find_opt e.sessions sid with
  | None -> false
  | Some s -> Avss.is_accepted s

let session_share e sid =
  match Hashtbl.find_opt e.sessions sid with None -> None | Some s -> Avss.share s

(* Dealer d's input bundle: its input sharing plus every randomness
   contribution. *)
let bundle e d =
  Input_share d :: List.init e.circuit.Circuit.n_random (fun k -> Rand_share (d, k))

let bundle_accepted e d = List.for_all (session_accepted e) (bundle e d)

let mul_gates e = e.mul_gate_ids

let mul_state e g =
  match Hashtbl.find_opt e.muls g with
  | Some st -> st
  | None ->
      let st = { started = false; reduced = false } in
      Hashtbl.replace e.muls g st;
      st

(* --- the cascade: run all progress rules to a local fixpoint --- *)

let input_votes e = List.init e.n (fun d -> Input_vote d)
let gate_votes e g = List.init e.n (fun d -> Mul_vote (g, d))

let count_yes e vids =
  List.fold_left
    (fun acc vid -> if decision_of e vid = Some true then acc + 1 else acc)
    0 vids

let all_decided e vids =
  List.for_all (fun vid -> Option.is_some (decision_of e vid)) vids

let settle e =
  let chunks = ref [] in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    let step sends =
      match sends with
      | [] -> ()
      | _ ->
          progressed := true;
          chunks := sends :: !chunks
    in

    (* Propose YES for input dealers whose whole bundle we accepted. *)
    for d = 0 to e.n - 1 do
      if (not (Hashtbl.mem e.proposed (Input_vote d))) && bundle_accepted e d then
        step (propose e (Input_vote d) true)
    done;

    (* Input close-out: n-f accepted dealers seen -> vote NO on the rest. *)
    if count_yes e (input_votes e) >= e.n - e.faults then
      List.iter
        (fun vid -> if not (Hashtbl.mem e.proposed vid) then step (propose e vid false))
        (input_votes e);

    (* Input completion: all votes decided and accepted bundles in hand. *)
    (match e.core with
    | Some _ -> ()
    | None ->
        if all_decided e (input_votes e) then begin
          let yes =
            List.filter (fun d -> decision_of e (Input_vote d) = Some true)
              (List.init e.n (fun d -> d))
          in
          if List.for_all (bundle_accepted e) yes then begin
            e.core <- Some yes;
            (* Randomness wires: sum of the core's contributions. *)
            for k = 0 to e.circuit.Circuit.n_random - 1 do
              let sum =
                List.fold_left
                  (fun s d ->
                    match session_share e (Rand_share (d, k)) with
                    | Some v -> Gf.add s v
                    | None -> s)
                  Gf.zero yes
              in
              e.rand_shares.(k) <- Some sum
            done;
            progressed := true
          end
        end);

    (* Gate evaluation (only once the core is known). *)
    (match e.core with
    | None -> ()
    | Some core ->
        Array.iteri
          (fun gi gate ->
            if Option.is_none e.gate_shares.(gi) then begin
              let value v = e.gate_shares.(gi) <- Some v; progressed := true in
              let ready j = e.gate_shares.(j) in
              match gate with
              | Circuit.Input d ->
                  if List.mem d core then begin
                    match session_share e (Input_share d) with
                    | Some v -> value v
                    | None -> ()
                  end
                  else value Gf.zero (* excluded dealer: default input 0 *)
              | Circuit.Random k -> (
                  match e.rand_shares.(k) with Some v -> value v | None -> ())
              | Circuit.Const c ->
                  (* constants are a valid degree-0 sharing of themselves *)
                  value c
              | Circuit.Add (a, b) -> (
                  match (ready a, ready b) with
                  | Some va, Some vb -> value (Gf.add va vb)
                  | _ -> ())
              | Circuit.Sub (a, b) -> (
                  match (ready a, ready b) with
                  | Some va, Some vb -> value (Gf.sub va vb)
                  | _ -> ())
              | Circuit.Scale (c, a) -> (
                  match ready a with Some va -> value (Gf.mul c va) | None -> ())
              | Circuit.Mul (a, b) -> (
                  let st = mul_state e gi in
                  match (ready a, ready b) with
                  | Some va, Some vb ->
                      if not st.started then begin
                        st.started <- true;
                        (* Reshare our degree-2t product share. *)
                        let sid = Mul_share (gi, e.me) in
                        let r =
                          Avss.deal (session e sid) e.rng ~secret:(Gf.mul va vb)
                        in
                        step (wrap_share sid r.Avss.sends)
                      end
                  | _ -> ())
            end)
          e.circuit.Circuit.gates;

        (* Multiplication reductions in flight. *)
        List.iter
          (fun gi ->
            let st = mul_state e gi in
            if st.started && not st.reduced then begin
              (* Vote YES for contributors whose resharing we accepted. *)
              for d = 0 to e.n - 1 do
                let vid = Mul_vote (gi, d) in
                if
                  (not (Hashtbl.mem e.proposed vid))
                  && session_accepted e (Mul_share (gi, d))
                then step (propose e vid true)
              done;
              (* Close-out once enough contributors for a degree-2d
                 interpolation are in. *)
              if count_yes e (gate_votes e gi) >= (2 * e.deg) + 1 then
                List.iter
                  (fun vid ->
                    if not (Hashtbl.mem e.proposed vid) then step (propose e vid false))
                  (gate_votes e gi);
              (* Reduction: all votes decided, all YES resharings in hand. *)
              if all_decided e (gate_votes e gi) then begin
                let contributors =
                  List.filter
                    (fun d -> decision_of e (Mul_vote (gi, d)) = Some true)
                    (List.init e.n (fun d -> d))
                in
                if
                  List.length contributors >= (2 * e.deg) + 1
                  && List.for_all
                       (fun d -> session_accepted e (Mul_share (gi, d)))
                       contributors
                then begin
                  let lambda =
                    Shamir.lagrange_at_zero (List.map (fun d -> d + 1) contributors)
                  in
                  let share =
                    List.fold_left
                      (fun s d ->
                        let coeff = List.assoc (d + 1) lambda in
                        match session_share e (Mul_share (gi, d)) with
                        | Some v -> Gf.add s (Gf.mul coeff v)
                        | None -> s)
                      Gf.zero contributors
                  in
                  st.reduced <- true;
                  e.gate_shares.(gi) <- Some share;
                  progressed := true
                end
              end
            end)
          (mul_gates e));

    (* Output dispatch, stage by stage: stage s output shares go out only
       once our own stage s-1 value is reconstructed (the mediator's s-th
       message follows its (s-1)-th). *)
    Array.iteri
      (fun si outs ->
        if
          (not e.stage_sent.(si))
          && (si = 0 || Option.is_some e.stage_results.(si - 1))
          && Array.for_all (fun gi -> Option.is_some e.gate_shares.(gi)) outs
        then begin
          e.stage_sent.(si) <- true;
          let sends =
            List.filter_map
              (fun o ->
                match e.gate_shares.(outs.(o)) with
                | Some v ->
                    if o = e.me then begin
                      Hashtbl.replace e.output_points (si, e.me) v;
                      None
                    end
                    else Some (o, Output_msg (si, v))
                | None -> None)
              (List.init e.n (fun o -> o))
          in
          step sends
        end)
      e.stages;

    (* Stage reconstruction via online error correction. *)
    Array.iteri
      (fun si r ->
        match r with
        | Some _ -> ()
        | None ->
            let points =
              Hashtbl.fold
                (fun (s, src) v acc -> if s = si then (src + 1, v) :: acc else acc)
                e.output_points []
            in
            (* Reveals are robust up to the sharing degree: rational
               players may corrupt their shares even when the fault budget
               is lower, and n >= 3*degree + 1 regimes must absorb that
               (Theorem 4.4's cotermination argument). *)
            (match Shamir.online_decode ~t:e.deg ~max_faults:(max e.deg e.faults) points with
            | Some v ->
                e.stage_results.(si) <- Some v;
                if si = Array.length e.stages - 1 then e.result <- Some v;
                progressed := true
            | None -> ()))
      e.stage_results
  done;
  List.concat (List.rev !chunks)

let start (e : t) =
  let sends = ref [] in
  (* Deal our input and randomness contributions. *)
  let deal sid secret =
    let r = Avss.deal (session e sid) e.rng ~secret in
    sends := !sends @ wrap_share sid r.Avss.sends
  in
  deal (Input_share e.me) e.input;
  for k = 0 to e.circuit.Circuit.n_random - 1 do
    (* Contributions respect the slot's distribution: a mod-m slot sums
       per-player values drawn uniformly in [0, m). *)
    let m = e.circuit.Circuit.random_moduli.(k) in
    let v = if m > 0 then Gf.of_int (Random.State.int e.rng m) else Gf.random e.rng in
    deal (Rand_share (e.me, k)) v
  done;
  let before = e.result in
  let more = settle e in
  let result = match (before, e.result) with None, Some v -> Some v | _ -> None in
  { sends = !sends @ more; result }

let handle (e : t) ~src m =
  let before = e.result in
  let sends =
    match m with
    | Share_msg (sid, sub) ->
        let r = Avss.handle (session e sid) ~src sub in
        wrap_share sid r.Avss.sends
    | Vote_msg (vid, sub) ->
        let r = Aba.handle (vote e vid) ~src sub in
        wrap_vote vid r.Aba.sends
    | Output_msg (stage, v) ->
        if
          stage >= 0
          && stage < Array.length e.stages
          && not (Hashtbl.mem e.output_points (stage, src))
        then Hashtbl.replace e.output_points (stage, src) v;
        []
  in
  let more = settle e in
  let result = match (before, e.result) with None, Some v -> Some v | _ -> None in
  { sends = sends @ more; result }

let result (e : t) = e.result
let stage_results (e : t) = Array.copy e.stage_results
let input_core e = e.core
