(** Asynchronous secure multiparty computation over an arithmetic circuit —
    the substrate behind the paper's Theorems 5.4/5.5 (BCG for n > 4t
    errorless, BKR for n > 3t with ε error), used by the cheap-talk
    compiler to simulate the mediator.

    One engine instance is one player's state. Protocol outline:

    + {b Input phase}: every player AVSS-shares its input and its
      contributions to the circuit's shared randomness; one {!Agreement.Aba}
      per dealer agrees on the input core set (>= n-t dealers). Inputs of
      excluded dealers default to 0, mirroring Lemma 6.8's arbitrary
      extension of the received input profile.
    + {b Evaluation}: linear gates are local; each multiplication gate runs
      a GRR degree reduction — every player reshapes its product share via
      AVSS and a per-gate common-subset agreement picks >= 2t+1
      contributors whose reshared values are combined with Lagrange
      coefficients.
    + {b Output}: player i's output wire shares are sent to player i only
      (recommendations are private); reconstruction uses online error
      correction, tolerating up to t corrupted shares.

    Fault model: t < n/4 (BCG mode) gives the errorless guarantees used by
    Theorem 4.1; running at t < n/3 corresponds to BKR/Theorem 4.2 where a
    Byzantine dealer or unlucky scheduling can cause an ε-probability
    failure. Active wrong-value resharing at multiplication gates is not
    verified (that is the companion-paper [10] machinery); see DESIGN.md. *)

type session_id =
  | Input_share of int  (** dealer *)
  | Rand_share of int * int  (** dealer, randomness slot *)
  | Mul_share of int * int  (** gate index, dealer *)

type vote_id =
  | Input_vote of int
  | Mul_vote of int * int

type msg =
  | Share_msg of session_id * Avss.msg
  | Vote_msg of vote_id * Agreement.Aba.msg
  | Output_msg of int * Field.Gf.t
      (** (stage, share of the recipient's output wire for that stage) *)

val pp_msg : Format.formatter -> msg -> unit

type t

val create :
  ?stages:int array array ->
  n:int ->
  degree:int ->
  faults:int ->
  me:int ->
  circuit:Circuit.t ->
  input:Field.Gf.t ->
  rng:Random.State.t ->
  coin_seed:int ->
  unit ->
  t
(** [degree] is the sharing degree — the privacy threshold, [k+t] in the
    cheap-talk compiler; [faults] bounds how many players may actively
    misbehave (quorums and error correction absorb that many). [rng]
    drives this player's own secret randomness; [coin_seed] is the shared
    ABA coin seed (common to all players of one run).
    [stages] (default: a single stage made of the circuit's outputs) lets
    the mediator send several messages per player: each stage names one
    output gate per player, and a player sends its stage-s shares only
    after reconstructing its own stage s-1 value — the mediator's s-th
    message follows its (s-1)-th. The final stage is the recommendation
    returned via [result].
    @raise Invalid_argument unless n > 3·faults,
    n >= degree + 2·faults + 1, the circuit has n inputs (and each stage n
    outputs), and (when the circuit multiplies)
    n >= 2·degree + faults + 1. *)

val reset :
  t -> input:Field.Gf.t -> rng:Random.State.t -> coin_seed:int -> unit
(** Scrub the engine back to its post-[create] state in place for a new
    session of the {e same} plan, reusing every dense array (sessions,
    votes, shares, stage points — the dominant per-player setup
    allocation). The static shape (n, degree, faults, me, circuit,
    stages) is kept; all per-session protocol state is cleared, and
    AVSS/ABA sub-states are recreated on demand exactly as a fresh
    engine would (the new [coin_seed] flows into the rebuilt coins).
    Observationally identical to [create] with the same arguments —
    the qcheck differential suite holds this to digest equality. Only
    valid between sessions (never with the engine's messages still in
    flight) and only with an unchanged circuit/stage layout — the
    caller guarantees this ({!Compile.Pool} does). *)

type reaction = {
  sends : (int * msg) list;
  result : Field.Gf.t option;  (** our reconstructed output, set once *)
}

val start : t -> reaction
(** Kick off the input phase (call from the process start signal). *)

val handle : t -> src:int -> msg -> reaction

val result : t -> Field.Gf.t option

val stage_results : t -> Field.Gf.t option array
(** Per-stage reconstructed values so far (last = [result]). *)

val input_core : t -> int list option
(** The agreed core set of input dealers, once known (sorted pids). *)

val digest : t -> int
(** Canonical hash of the engine's dense-array state (AVSS sessions, ABA
    votes, share and reconstruction arrays, rng) for model-checker state
    fingerprints: engines with different digests are in different states;
    equal digests are equal-with-overwhelming-probability, never proof.
    Deterministic within a process; do not persist across runs. *)
