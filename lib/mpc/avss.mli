(** Asynchronous verifiable secret sharing (BCG-style, simplified).

    The dealer embeds its secret in a random symmetric bivariate
    polynomial B (degree t in each variable, B(0,0) = secret) and sends
    player i the row polynomial f_i(y) = B(i, y). Players cross-check
    pairwise: i sends j the point f_i(j), and j checks it against f_j(i)
    (equal by symmetry). A player that holds a row confirmed by 2t+1
    points announces READY; 2t+1 READY announcements make a player accept
    its share s_i = f_i(0) — a degree-t Shamir share of the secret (the
    sharing polynomial is x ↦ B(x, 0)).

    A player whose row never arrives (faulty dealer) recovers it from the
    cross points: the points {(j, p_ji)} it receives lie on its row, so
    Berlekamp-Welch decoding with certification against >= 2t+1 points
    reconstructs the row once enough honest points are in.

    Guarantees (f <= t < n/3 faulty; exact for honest dealers, and the
    recovery path covers dealer crash-after-partial-dealing; a fully
    Byzantine dealer can, with small probability under adversarial
    scheduling, keep acceptance split — the ε of the paper's Theorem 5.5;
    see DESIGN.md):
    - if the dealer is honest, every honest player accepts, and the
      accepted shares interpolate the dealt secret;
    - if any honest player accepts, the READY amplification drives every
      honest player to accept a share of the same polynomial. *)

type msg =
  | Row of Field.Poly.t  (** dealer -> player i: f_i *)
  | Point of Field.Gf.t  (** i -> j: f_i(j) *)
  | Ready

val pp_msg : Format.formatter -> msg -> unit

type t

val create : n:int -> degree:int -> faults:int -> me:int -> dealer:int -> t
(** [degree] is the sharing degree (privacy threshold — [k+t] in the
    cheap-talk compiler); [faults] the number of Byzantine players the
    quorums must absorb. @raise Invalid_argument unless n > 3·faults and
    n >= degree + 2·faults + 1. *)

type reaction = {
  sends : (int * msg) list;
  accepted : Field.Gf.t option;  (** our share, at the moment of acceptance *)
}

val deal : t -> Random.State.t -> secret:Field.Gf.t -> reaction
(** Dealer's first move. @raise Invalid_argument if [me <> dealer]. *)

val handle : t -> src:int -> msg -> reaction

val share : t -> Field.Gf.t option
(** Our accepted share, if acceptance happened. *)

val is_accepted : t -> bool
