module Gf = Field.Gf
module Poly = Field.Poly
module Bipoly = Field.Bipoly

type msg =
  | Row of Poly.t
  | Point of Gf.t
  | Ready

let pp_msg fmt = function
  | Row p -> Format.fprintf fmt "Row(%a)" Poly.pp p
  | Point v -> Format.fprintf fmt "Point(%a)" Gf.pp v
  | Ready -> Format.fprintf fmt "Ready"

type t = {
  n : int;
  deg : int; (* sharing degree: privacy threshold (k+t in the compiler) *)
  faults : int; (* max Byzantine players the quorums must absorb *)
  me : int;
  dealer : int;
  mutable row : Poly.t option;
  mutable row_received : bool; (* a Row message was already processed *)
  mutable points_sent : bool;
  (* Per-pid state lives in flat arrays (pids are dense 0..n-1): the old
     per-instance Hashtbls cost a polymorphic hash + bucket walk on every
     progress scan, which dominated the simulator profile. *)
  points : Gf.t option array; (* src -> claimed f_src(me) = f_me(src) *)
  mutable n_points : int;
  mutable readied : bool;
  ready : bool array;
  mutable n_ready : int;
  mutable accepted_share : Gf.t option;
}

type reaction = {
  sends : (int * msg) list;
  accepted : Gf.t option;
}

let nothing = { sends = []; accepted = None }

let create ~n ~degree ~faults ~me ~dealer =
  if n <= 3 * faults then invalid_arg "Avss.create: need n > 3*faults";
  if n < degree + (2 * faults) + 1 then
    invalid_arg "Avss.create: need n >= degree + 2*faults + 1";
  if me < 0 || me >= n || dealer < 0 || dealer >= n then invalid_arg "Avss.create: pid range";
  {
    n;
    deg = degree;
    faults;
    me;
    dealer;
    row = None;
    row_received = false;
    points_sent = false;
    points = Array.make n None;
    n_points = 0;
    readied = false;
    ready = Array.make n false;
    n_ready = 0;
    accepted_share = None;
  }

let share s = s.accepted_share
let is_accepted s = Option.is_some s.accepted_share

let others s = List.filter (fun i -> i <> s.me) (List.init s.n (fun i -> i))

(* Points from others claimed to equal our row at their index (1-based
   evaluation points: player i evaluates at i+1). *)
let point_of _s i = Gf.of_int (i + 1)

let matching_points s row =
  let acc = ref 1 (* our own point trivially matches *) in
  for src = 0 to s.n - 1 do
    match s.points.(src) with
    | Some p -> if Gf.equal (Poly.eval row (point_of s src)) p then incr acc
    | None -> ()
  done;
  !acc

let send_points s row =
  if s.points_sent then []
  else begin
    s.points_sent <- true;
    List.map (fun j -> (j, Point (Poly.eval row (point_of s j)))) (others s)
  end

let send_ready s =
  if s.readied then []
  else begin
    s.readied <- true;
    if not s.ready.(s.me) then begin
      s.ready.(s.me) <- true;
      s.n_ready <- s.n_ready + 1
    end;
    List.map (fun j -> (j, Ready)) (others s)
  end

let ready_count s = s.n_ready

(* Attempt to recover our row from cross points: the points (j, p_j) we
   received lie on our row. Adopt a decoded row only when it is certified
   against >= 2t+1 of the points (so at least t+1 honest points pin it). *)
let try_recover_row s =
  match s.row with
  | Some _ -> None
  | None ->
      (* Collect received cross points in pid order (the decoded row is
         the unique certified polynomial, so point order cannot change
         the result — only the cache keys). *)
      let r = s.n_points in
      let xs = Array.make r Gf.zero in
      let ys = Array.make r Gf.zero in
      let i = ref 0 in
      for src = 0 to s.n - 1 do
        match s.points.(src) with
        | Some p ->
            xs.(!i) <- point_of s src;
            ys.(!i) <- p;
            incr i
        | None -> ()
      done;
      let rec try_e e =
        if e > s.faults || s.deg + s.faults + 1 + e > r then None
        else
          match Shamir.decode_arrays ~degree:s.deg ~max_errors:e xs ys with
          | Some row -> Some row
          | None -> try_e (e + 1)
      in
      try_e 0

(* Progress rules shared by all handlers. *)
let progress s =
  let sends = ref [] in
  (match s.row with
  | None -> (
      (* Row recovery becomes possible as points accumulate, and is only
         attempted once the instance shows signs of life (some READY). *)
      if ready_count s >= 1 then
        match try_recover_row s with
        | Some row ->
            s.row <- Some row;
            sends := send_points s row @ !sends
        | None -> ())
  | Some _ -> ());
  (match s.row with
  | Some row ->
      let m = matching_points s row in
      if m >= s.deg + s.faults + 1 then sends := send_ready s @ !sends
      else if m >= s.deg + 1 && ready_count s >= s.faults + 1 then
        (* READY amplification: enough corroboration plus t+1 announcements *)
        sends := send_ready s @ !sends
  | None -> ());
  let accepted =
    match (s.accepted_share, s.row) with
    | None, Some row when ready_count s >= (2 * s.faults) + 1 ->
        let sh = Poly.eval row Gf.zero in
        s.accepted_share <- Some sh;
        Some sh
    | _ -> None
  in
  { sends = !sends; accepted }

let deal s rng ~secret =
  if s.me <> s.dealer then invalid_arg "Avss.deal: not the dealer";
  if s.row_received then invalid_arg "Avss.deal: already dealt";
  let b = Bipoly.random_symmetric rng ~degree:s.deg ~secret in
  s.row_received <- true;
  let my_row = Bipoly.row b (point_of s s.me) in
  s.row <- Some my_row;
  let row_sends =
    List.map (fun j -> (j, Row (Bipoly.row b (point_of s j)))) (others s)
  in
  let pt_sends = send_points s my_row in
  let r = progress s in
  { r with sends = row_sends @ pt_sends @ r.sends }

let handle s ~src m =
  match m with
  | Row row ->
      if src <> s.dealer || s.row_received then nothing
      else begin
        s.row_received <- true;
        if Poly.degree row > s.deg then nothing
        else begin
          (match s.row with
          | Some _ -> () (* already recovered; keep the recovered row *)
          | None -> s.row <- Some row);
          let sends =
            match s.row with Some r -> send_points s r | None -> []
          in
          let r = progress s in
          { r with sends = sends @ r.sends }
        end
      end
  | Point p ->
      if src < 0 || src >= s.n || Option.is_some s.points.(src) then nothing
      else begin
        s.points.(src) <- Some p;
        s.n_points <- s.n_points + 1;
        progress s
      end
  | Ready ->
      if src < 0 || src >= s.n || s.ready.(src) then nothing
      else begin
        s.ready.(src) <- true;
        s.n_ready <- s.n_ready + 1;
        progress s
      end
